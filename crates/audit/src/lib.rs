//! Black-box runtime auditing: invariant watchdogs, typed anomaly
//! reports, and the in-memory snapshot ring behind rewind-replay.
//!
//! Every headline result in this reproduction rests on the simulator
//! silently upholding invariants — packet conservation, flow progress,
//! bounded queues, event-time monotonicity, bit-stable shard handoffs —
//! that goldens only check after the fact. This crate is the *detection*
//! half of fault tolerance: the runtime samples a [`BoundarySample`] at
//! checkpoint/window boundaries and hands it to an [`Audit`]
//! implementation. The real [`InvariantAuditor`] evaluates cheap
//! incremental watchdogs over the sample; the zero-sized [`NoopAudit`]
//! mirrors the `Probe` pattern (`ENABLED = false` monomorphizes every
//! audit hook away), so default builds pay nothing.
//!
//! On a trip the auditor does **not** panic: it records a typed
//! [`AnomalyReport`], and the runtime dumps the [`SnapshotRing`] — the
//! last K `DRILLSNAP` checkpoints, bounded by count and bytes — plus a
//! snapshot of the faulted instant, giving `tracedump --replay-from` a
//! rewind point just before the anomaly.
//!
//! # Cost contract
//!
//! Watchdogs are O(switch ports + flows) per boundary and allocation-free
//! after warm-up; boundaries default to every 50k events, so the audit
//! amortizes to well under 1% of the event loop (measured by the qbench
//! `audit_ab` section). Nothing an auditor observes may steer the
//! simulation: auditor-on fingerprints are pinned bit-identical to
//! auditor-off.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use drill_sim::Time;

/// Progress of one flow at a boundary, as the runtime reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowProgress {
    /// Flow id (index into the runtime's flow table).
    pub flow: u32,
    /// Cumulative bytes the sender has seen acknowledged.
    pub bytes_acked: u64,
    /// When the flow started.
    pub start: Time,
    /// Whether the flow has completed (completed flows are never stuck).
    pub done: bool,
}

/// Everything the watchdogs see at one audit boundary.
///
/// The runtime assembles this between dispatches — never mid-event — so
/// every count is consistent: each live packet is in exactly one holder.
#[derive(Clone, Copy, Debug)]
pub struct BoundarySample<'a> {
    /// Simulation clock at the boundary.
    pub now: Time,
    /// Events processed so far.
    pub events: u64,
    /// Live packet handles across all arenas.
    pub arena_live: u64,
    /// Packets accounted for by walking every holder: switch queues
    /// (waiting + in-flight), NIC queues, shim reorder buffers, and
    /// pending arrive events.
    pub holders: u64,
    /// Largest per-port *waiting* byte count over all switch ports.
    pub max_wait_bytes: u64,
    /// Switch owning that port.
    pub max_wait_switch: u32,
    /// The port itself.
    pub max_wait_port: u16,
    /// Configured per-port queue capacity in bytes (0 = unlimited).
    pub queue_limit_bytes: u64,
    /// Timestamp of the next pending event, if any.
    pub next_event_time: Option<Time>,
    /// Cross-shard handoff count so far (0 on the serial engine).
    pub handoffs: u64,
    /// FNV fingerprint over all handoffs so far.
    pub handoff_hash: u64,
    /// Per-flow progress, indexed by flow id.
    pub flows: &'a [FlowProgress],
}

/// What went wrong. Each variant carries the evidence the report prints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnomalyKind {
    /// Arena live-count and the holder walk disagree: a packet handle
    /// leaked (live > holders) or was double-freed (live < holders).
    PacketConservation {
        /// Live handles across all arenas.
        live: u64,
        /// Handles found by walking every holder.
        holders: u64,
    },
    /// A started, uncompleted flow has acknowledged no new byte for
    /// longer than the configured timeout.
    StuckFlow {
        /// The stalled flow id.
        flow: u32,
        /// How long it has been stalled.
        stalled: Time,
    },
    /// A switch port's waiting bytes exceed the configured capacity —
    /// admission control failed.
    QueueCeiling {
        /// Switch owning the port.
        switch: u32,
        /// The overflowing port.
        port: u16,
        /// Waiting bytes observed.
        bytes: u64,
        /// The configured ceiling.
        limit: u64,
    },
    /// Event time ran backwards: a pending event is older than the
    /// clock, or the clock itself regressed across boundaries.
    TimeRegression {
        /// The boundary clock.
        now: Time,
        /// The offending earlier timestamp.
        pending: Time,
    },
    /// The shard handoff fingerprint changed without any new handoff, or
    /// the handoff count regressed — the barrier bookkeeping is corrupt.
    HandoffMismatch {
        /// Handoff count at the boundary.
        handoffs: u64,
        /// Fingerprint at the previous boundary.
        prev_hash: u64,
        /// Fingerprint now.
        hash: u64,
    },
    /// A snapshot failed checksum or decode — the rewind chain is
    /// damaged.
    CorruptSnapshot {
        /// The decode error, stringified (section/offset included when
        /// the typed codec error carried them).
        detail: String,
    },
}

impl AnomalyKind {
    /// Stable machine-readable name (used in `anomaly.meta` files and
    /// test assertions).
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::PacketConservation { .. } => "packet_conservation",
            AnomalyKind::StuckFlow { .. } => "stuck_flow",
            AnomalyKind::QueueCeiling { .. } => "queue_ceiling",
            AnomalyKind::TimeRegression { .. } => "time_regression",
            AnomalyKind::HandoffMismatch { .. } => "handoff_mismatch",
            AnomalyKind::CorruptSnapshot { .. } => "corrupt_snapshot",
        }
    }
}

/// One tripped watchdog: the kind plus where in the run it fired.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AnomalyReport {
    /// What tripped.
    pub kind: AnomalyKind,
    /// Simulation clock at the boundary that tripped.
    pub at: Time,
    /// Events processed when it tripped.
    pub events: u64,
}

impl AnomalyReport {
    /// Wrap a snapshot decode failure as a [`AnomalyKind::CorruptSnapshot`]
    /// report (the typed codec error's section/offset ride along in the
    /// stringified detail).
    pub fn from_decode_error(err: &io::Error, at: Time, events: u64) -> AnomalyReport {
        AnomalyReport {
            kind: AnomalyKind::CorruptSnapshot {
                detail: err.to_string(),
            },
            at,
            events,
        }
    }

    /// `key=value` lines for the `anomaly.meta` dump file. The first
    /// three lines are always `kind`, `at_ns`, `events`.
    pub fn meta_lines(&self) -> Vec<String> {
        let mut lines = vec![
            format!("kind={}", self.kind.name()),
            format!("at_ns={}", self.at.as_nanos()),
            format!("events={}", self.events),
        ];
        match &self.kind {
            AnomalyKind::PacketConservation { live, holders } => {
                lines.push(format!("live={live}"));
                lines.push(format!("holders={holders}"));
            }
            AnomalyKind::StuckFlow { flow, stalled } => {
                lines.push(format!("flow={flow}"));
                lines.push(format!("stalled_ns={}", stalled.as_nanos()));
            }
            AnomalyKind::QueueCeiling {
                switch,
                port,
                bytes,
                limit,
            } => {
                lines.push(format!("switch={switch}"));
                lines.push(format!("port={port}"));
                lines.push(format!("bytes={bytes}"));
                lines.push(format!("limit={limit}"));
            }
            AnomalyKind::TimeRegression { now, pending } => {
                lines.push(format!("now_ns={}", now.as_nanos()));
                lines.push(format!("pending_ns={}", pending.as_nanos()));
            }
            AnomalyKind::HandoffMismatch {
                handoffs,
                prev_hash,
                hash,
            } => {
                lines.push(format!("handoffs={handoffs}"));
                lines.push(format!("prev_hash={prev_hash:#018x}"));
                lines.push(format!("hash={hash:#018x}"));
            }
            AnomalyKind::CorruptSnapshot { detail } => {
                lines.push(format!("detail={detail}"));
            }
        }
        lines
    }
}

impl fmt::Display for AnomalyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "anomaly {} at t={}ns after {} events",
            self.kind.name(),
            self.at.as_nanos(),
            self.events
        )?;
        match &self.kind {
            AnomalyKind::PacketConservation { live, holders } => {
                write!(f, ": {live} live handles vs {holders} held")
            }
            AnomalyKind::StuckFlow { flow, stalled } => {
                write!(f, ": flow {flow} stalled {}ns", stalled.as_nanos())
            }
            AnomalyKind::QueueCeiling {
                switch,
                port,
                bytes,
                limit,
            } => write!(f, ": switch {switch} port {port} holds {bytes}B > {limit}B"),
            AnomalyKind::TimeRegression { now, pending } => write!(
                f,
                ": pending t={}ns behind clock t={}ns",
                pending.as_nanos(),
                now.as_nanos()
            ),
            AnomalyKind::HandoffMismatch {
                handoffs,
                prev_hash,
                hash,
            } => write!(
                f,
                ": hash {prev_hash:#x} -> {hash:#x} with handoffs stuck at {handoffs}"
            ),
            AnomalyKind::CorruptSnapshot { detail } => write!(f, ": {detail}"),
        }
    }
}

/// The audit hook the runtime is generic over, mirroring the telemetry
/// `Probe` pattern: static dispatch, empty inlined defaults, and a
/// zero-sized [`NoopAudit`] whose `ENABLED = false` lets the event loop
/// skip boundary assembly entirely.
///
/// Audits observe and accuse; they never steer. Nothing returned from an
/// audit method may influence the simulation — the determinism goldens
/// pin auditor-on fingerprints bit-identical to auditor-off.
pub trait Audit {
    /// Whether boundary samples should be assembled at all. `false`
    /// compiles the whole audit path out.
    const ENABLED: bool = true;

    /// Inspect one boundary sample. Called between dispatches only.
    #[inline]
    fn on_boundary(&mut self, _sample: &BoundarySample<'_>) {}

    /// The anomalies recorded so far (chronological).
    #[inline]
    fn reports(&self) -> &[AnomalyReport] {
        &[]
    }
}

/// The do-nothing audit: zero-sized, `ENABLED = false`, every hook
/// monomorphizes away. The default for every run that doesn't opt in.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoopAudit;

impl Audit for NoopAudit {
    const ENABLED: bool = false;
}

/// Per-flow stall tracking for the stuck-flow watchdog.
#[derive(Clone, Copy, Debug)]
struct FlowWatch {
    bytes_acked: u64,
    /// Boundary clock when `bytes_acked` last advanced (or the flow was
    /// first observed).
    since: Time,
    /// Each stuck flow is reported once, not once per boundary.
    reported: bool,
}

/// The real auditor: evaluates every watchdog over each boundary sample
/// and accumulates typed reports, capped at `max_reports`.
#[derive(Clone, Debug)]
pub struct InvariantAuditor {
    stuck_after: Time,
    max_reports: usize,
    reports: Vec<AnomalyReport>,
    prev_now: Time,
    prev_handoffs: u64,
    prev_hash: u64,
    flows: Vec<FlowWatch>,
}

impl InvariantAuditor {
    /// An auditor that calls a flow stuck after `stuck_after` without a
    /// newly acknowledged byte, recording at most `max_reports` anomalies.
    pub fn new(stuck_after: Time, max_reports: usize) -> InvariantAuditor {
        InvariantAuditor {
            stuck_after,
            max_reports: max_reports.max(1),
            reports: Vec::new(),
            prev_now: Time::ZERO,
            prev_handoffs: 0,
            prev_hash: 0,
            flows: Vec::new(),
        }
    }

    /// Record an externally detected anomaly (e.g. a snapshot decode
    /// failure), honoring the report cap.
    pub fn record(&mut self, report: AnomalyReport) {
        if self.reports.len() < self.max_reports {
            self.reports.push(report);
        }
    }

    /// Whether any watchdog has tripped.
    pub fn tripped(&self) -> bool {
        !self.reports.is_empty()
    }

    fn trip(&mut self, kind: AnomalyKind, at: Time, events: u64) {
        self.record(AnomalyReport { kind, at, events });
    }
}

impl Audit for InvariantAuditor {
    fn on_boundary(&mut self, s: &BoundarySample<'_>) {
        // Event-time monotonicity: the clock never runs backwards, and
        // no pending event may be older than the clock.
        if s.now < self.prev_now {
            self.trip(
                AnomalyKind::TimeRegression {
                    now: s.now,
                    pending: self.prev_now,
                },
                s.now,
                s.events,
            );
        }
        if let Some(next) = s.next_event_time {
            if next < s.now {
                self.trip(
                    AnomalyKind::TimeRegression {
                        now: s.now,
                        pending: next,
                    },
                    s.now,
                    s.events,
                );
            }
        }

        // Packet conservation: every live arena handle is in exactly one
        // holder (switch queue, NIC queue, shim buffer, pending arrival).
        if s.arena_live != s.holders {
            self.trip(
                AnomalyKind::PacketConservation {
                    live: s.arena_live,
                    holders: s.holders,
                },
                s.now,
                s.events,
            );
        }

        // Queue ceiling: admission control bounds *waiting* bytes per
        // port; an excess means a packet bypassed the check.
        if s.queue_limit_bytes > 0 && s.max_wait_bytes > s.queue_limit_bytes {
            self.trip(
                AnomalyKind::QueueCeiling {
                    switch: s.max_wait_switch,
                    port: s.max_wait_port,
                    bytes: s.max_wait_bytes,
                    limit: s.queue_limit_bytes,
                },
                s.now,
                s.events,
            );
        }

        // Handoff fingerprint cross-check: the FNV hash folds once per
        // handoff, so it must be frozen whenever the count is, and the
        // count never regresses.
        if s.handoffs < self.prev_handoffs
            || (s.handoffs == self.prev_handoffs && s.handoff_hash != self.prev_hash)
        {
            self.trip(
                AnomalyKind::HandoffMismatch {
                    handoffs: s.handoffs,
                    prev_hash: self.prev_hash,
                    hash: s.handoff_hash,
                },
                s.now,
                s.events,
            );
        }

        // Stuck flows: a started, uncompleted flow must acknowledge a new
        // byte at least every `stuck_after`.
        for f in s.flows {
            let idx = f.flow as usize;
            if self.flows.len() <= idx {
                self.flows.resize(
                    idx + 1,
                    FlowWatch {
                        bytes_acked: 0,
                        since: f.start,
                        reported: false,
                    },
                );
            }
            let w = &mut self.flows[idx];
            if f.done {
                w.reported = true; // completed: never report again
                continue;
            }
            if f.bytes_acked > w.bytes_acked {
                w.bytes_acked = f.bytes_acked;
                w.since = s.now;
                w.reported = false;
                continue;
            }
            let stalled = s.now - w.since.max(f.start);
            if !w.reported && stalled >= self.stuck_after {
                w.reported = true;
                let kind = AnomalyKind::StuckFlow {
                    flow: f.flow,
                    stalled,
                };
                self.trip(kind, s.now, s.events);
            }
        }

        self.prev_now = s.now;
        self.prev_handoffs = s.handoffs;
        self.prev_hash = s.handoff_hash;
    }

    fn reports(&self) -> &[AnomalyReport] {
        &self.reports
    }
}

/// One retained checkpoint in the [`SnapshotRing`].
#[derive(Clone, Debug)]
pub struct RingEntry {
    /// Simulation clock at the checkpoint.
    pub at: Time,
    /// Events processed at the checkpoint.
    pub events: u64,
    /// The encoded `DRILLSNAP` bytes.
    pub bytes: Vec<u8>,
}

/// The last K encoded `DRILLSNAP` checkpoints, bounded by entry count
/// *and* total bytes. Eviction drops the oldest entries first and always
/// keeps the newest, even when it alone exceeds the byte budget — a
/// rewind point beats an empty ring.
#[derive(Clone, Debug)]
pub struct SnapshotRing {
    max_entries: usize,
    max_bytes: usize,
    total_bytes: usize,
    entries: VecDeque<RingEntry>,
}

impl SnapshotRing {
    /// A ring holding at most `max_entries` snapshots and `max_bytes`
    /// total encoded bytes.
    pub fn new(max_entries: usize, max_bytes: usize) -> SnapshotRing {
        SnapshotRing {
            max_entries: max_entries.max(1),
            max_bytes,
            total_bytes: 0,
            entries: VecDeque::new(),
        }
    }

    /// Append a checkpoint, evicting from the oldest end until both
    /// bounds hold (the newest entry is never evicted).
    pub fn push(&mut self, at: Time, events: u64, bytes: Vec<u8>) {
        self.total_bytes += bytes.len();
        self.entries.push_back(RingEntry { at, events, bytes });
        while self.entries.len() > 1
            && (self.entries.len() > self.max_entries || self.total_bytes > self.max_bytes)
        {
            let dropped = self.entries.pop_front().expect("len > 1");
            self.total_bytes -= dropped.bytes.len();
        }
    }

    /// The retained checkpoints, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &RingEntry> {
        self.entries.iter()
    }

    /// The most recent checkpoint, if any.
    pub fn newest(&self) -> Option<&RingEntry> {
        self.entries.back()
    }

    /// Number of retained checkpoints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total encoded bytes retained.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// Write every retained checkpoint to `dir` as
    /// `ring-<idx>-<events>.drillsnap` (idx 0 = oldest; the highest idx
    /// is the rewind point closest to the anomaly). Returns the written
    /// paths, oldest first.
    pub fn dump(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.entries.len());
        for (i, e) in self.entries.iter().enumerate() {
            let path = dir.join(format!("ring-{i:03}-{}.drillsnap", e.events));
            fs::write(&path, &e.bytes)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(flows: &'a [FlowProgress]) -> BoundarySample<'a> {
        BoundarySample {
            now: Time::from_millis(1),
            events: 1000,
            arena_live: 5,
            holders: 5,
            max_wait_bytes: 100,
            max_wait_switch: 0,
            max_wait_port: 0,
            queue_limit_bytes: 1000,
            next_event_time: None,
            handoffs: 0,
            handoff_hash: 0,
            flows,
        }
    }

    #[test]
    fn noop_audit_is_zero_sized_and_disabled() {
        assert_eq!(std::mem::size_of::<NoopAudit>(), 0);
        assert!(!NoopAudit::ENABLED);
        assert!(InvariantAuditor::ENABLED);
        let mut a = NoopAudit;
        a.on_boundary(&sample(&[]));
        assert!(a.reports().is_empty());
    }

    #[test]
    fn clean_sample_trips_nothing() {
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        for i in 1..=10u64 {
            let mut s = sample(&[]);
            s.now = Time::from_millis(i);
            s.events = i * 1000;
            s.next_event_time = Some(Time::from_millis(i + 1));
            a.on_boundary(&s);
        }
        assert!(!a.tripped());
    }

    #[test]
    fn conservation_mismatch_trips() {
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        let mut s = sample(&[]);
        s.arena_live = 6; // one leaked handle
        a.on_boundary(&s);
        assert_eq!(a.reports().len(), 1);
        assert!(matches!(
            a.reports()[0].kind,
            AnomalyKind::PacketConservation {
                live: 6,
                holders: 5
            }
        ));
        assert_eq!(a.reports()[0].kind.name(), "packet_conservation");
    }

    #[test]
    fn queue_ceiling_trips_with_location() {
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        let mut s = sample(&[]);
        s.max_wait_bytes = 2000;
        s.max_wait_switch = 7;
        s.max_wait_port = 3;
        a.on_boundary(&s);
        assert!(matches!(
            a.reports()[0].kind,
            AnomalyKind::QueueCeiling {
                switch: 7,
                port: 3,
                bytes: 2000,
                limit: 1000
            }
        ));
        // Unlimited queues (limit 0) never trip.
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        s.queue_limit_bytes = 0;
        a.on_boundary(&s);
        assert!(!a.tripped());
    }

    #[test]
    fn time_regression_trips_on_stale_pending_and_clock_rollback() {
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        let mut s = sample(&[]);
        s.next_event_time = Some(Time::from_nanos(1)); // long past
        a.on_boundary(&s);
        assert!(matches!(
            a.reports()[0].kind,
            AnomalyKind::TimeRegression { .. }
        ));
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        let mut s1 = sample(&[]);
        s1.now = Time::from_millis(9);
        a.on_boundary(&s1);
        let mut s2 = sample(&[]);
        s2.now = Time::from_millis(3); // clock went backwards
        a.on_boundary(&s2);
        assert!(a
            .reports()
            .iter()
            .any(|r| matches!(r.kind, AnomalyKind::TimeRegression { .. })));
    }

    #[test]
    fn handoff_hash_must_freeze_with_count() {
        let mut a = InvariantAuditor::new(Time::from_millis(500), 8);
        let mut s = sample(&[]);
        s.handoffs = 4;
        s.handoff_hash = 0xabc;
        a.on_boundary(&s);
        // Count advances: the hash may change freely.
        s.handoffs = 5;
        s.handoff_hash = 0xdef;
        s.now = Time::from_millis(2);
        a.on_boundary(&s);
        assert!(!a.tripped());
        // Count frozen but the hash moved: corrupt bookkeeping.
        s.handoff_hash = 0x123;
        s.now = Time::from_millis(3);
        a.on_boundary(&s);
        assert!(matches!(
            a.reports()[0].kind,
            AnomalyKind::HandoffMismatch { handoffs: 5, .. }
        ));
    }

    #[test]
    fn stuck_flow_trips_once_and_progress_resets_the_clock() {
        let stuck_after = Time::from_millis(5);
        let mut a = InvariantAuditor::new(stuck_after, 8);
        let flow = |acked: u64, done: bool| {
            [FlowProgress {
                flow: 0,
                bytes_acked: acked,
                start: Time::ZERO,
                done,
            }]
        };
        fn at<'a>(ms: u64, flows: &'a [FlowProgress]) -> BoundarySample<'a> {
            let mut s = sample(flows);
            s.now = Time::from_millis(ms);
            s
        }
        a.on_boundary(&at(1, &flow(100, false)));
        a.on_boundary(&at(4, &flow(200, false))); // progress at 4ms
        a.on_boundary(&at(8, &flow(200, false))); // stalled 4ms: ok
        assert!(!a.tripped());
        a.on_boundary(&at(10, &flow(200, false))); // stalled 6ms: stuck
        assert_eq!(a.reports().len(), 1);
        assert!(matches!(
            a.reports()[0].kind,
            AnomalyKind::StuckFlow { flow: 0, .. }
        ));
        // Still stalled: no duplicate report.
        a.on_boundary(&at(20, &flow(200, false)));
        assert_eq!(a.reports().len(), 1);
        // Completed flows never report.
        let mut a = InvariantAuditor::new(stuck_after, 8);
        a.on_boundary(&at(1, &flow(100, false)));
        a.on_boundary(&at(100, &flow(100, true)));
        assert!(!a.tripped());
    }

    #[test]
    fn report_cap_holds() {
        let mut a = InvariantAuditor::new(Time::from_millis(500), 2);
        for i in 0..5u64 {
            let mut s = sample(&[]);
            s.now = Time::from_millis(i + 1);
            s.arena_live = 100 + i; // conservation broken every boundary
            a.on_boundary(&s);
        }
        assert_eq!(a.reports().len(), 2);
    }

    #[test]
    fn ring_evicts_oldest_by_count_and_bytes() {
        let mut r = SnapshotRing::new(3, 1000);
        for i in 0..5u64 {
            r.push(Time::from_millis(i), i * 100, vec![0u8; 100]);
        }
        assert_eq!(r.len(), 3);
        let events: Vec<u64> = r.entries().map(|e| e.events).collect();
        assert_eq!(events, vec![200, 300, 400], "oldest evicted first");
        assert_eq!(r.newest().unwrap().events, 400);
        assert_eq!(r.total_bytes(), 300);

        // Byte bound evicts too, but the newest always survives.
        let mut r = SnapshotRing::new(10, 250);
        r.push(Time::ZERO, 0, vec![0u8; 100]);
        r.push(Time::ZERO, 1, vec![0u8; 100]);
        r.push(Time::ZERO, 2, vec![0u8; 100]);
        assert_eq!(r.len(), 2, "300B > 250B budget drops the oldest");
        r.push(Time::ZERO, 3, vec![0u8; 10_000]);
        assert_eq!(r.len(), 1, "oversized newest still retained");
        assert_eq!(r.newest().unwrap().events, 3);
    }

    #[test]
    fn ring_dump_writes_oldest_first() {
        let dir = std::env::temp_dir().join(format!("drill-audit-ring-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut r = SnapshotRing::new(2, usize::MAX);
        r.push(Time::from_millis(1), 111, b"aaa".to_vec());
        r.push(Time::from_millis(2), 222, b"bbb".to_vec());
        let paths = r.dump(&dir).unwrap();
        assert_eq!(paths.len(), 2);
        assert!(paths[0]
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .contains("111"));
        assert_eq!(fs::read(&paths[1]).unwrap(), b"bbb");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_display_and_meta_lines_carry_evidence() {
        let r = AnomalyReport {
            kind: AnomalyKind::StuckFlow {
                flow: 42,
                stalled: Time::from_millis(7),
            },
            at: Time::from_millis(9),
            events: 123_456,
        };
        let text = r.to_string();
        assert!(text.contains("stuck_flow"));
        assert!(text.contains("flow 42"));
        let meta = r.meta_lines();
        assert_eq!(meta[0], "kind=stuck_flow");
        assert!(meta.contains(&"flow=42".to_string()));
        assert!(meta.contains(&format!("events={}", 123_456)));

        let err = io::Error::new(
            io::ErrorKind::InvalidData,
            "bad section (section 3, offset 9)",
        );
        let r = AnomalyReport::from_decode_error(&err, Time::ZERO, 0);
        assert_eq!(r.kind.name(), "corrupt_snapshot");
        assert!(r.to_string().contains("section 3"));
    }
}
