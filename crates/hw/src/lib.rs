//! Hardware cost model for DRILL (§4 "Hardware and deployability
//! considerations").
//!
//! The paper implements DRILL(2, 1) in under 400 lines of Verilog and uses
//! Xilinx Vivado plus published per-gate area figures [56, 58] to estimate
//! the added chip area at 0.04 mm² — under 1% of a minimum-size (200 mm²
//! \[38\]) switching chip. We cannot run Vivado here, so this crate
//! reproduces the *accounting method*: an explicit inventory of the logic
//! a DRILL(d, m) engine adds (random port sampling, queue-depth
//! comparators, memory registers, the select mux), NAND2-equivalent gate
//! counts from standard-cell rules of thumb, and an area roll-up against
//! the same 200 mm² reference die.
//!
//! The absolute numbers are estimates; the reproduced claim is the
//! *conclusion*: DRILL's data-plane addition is a vanishing fraction of a
//! switch chip, and grows only linearly in `d + m`.

#![warn(missing_docs)]

/// Technology/package assumptions for the area roll-up.
#[derive(Clone, Copy, Debug)]
pub struct TechNode {
    /// Area of one NAND2-equivalent gate, in square microns.
    pub nand2_um2: f64,
    /// Reference switch-chip area the overhead is compared against, mm².
    pub chip_mm2: f64,
}

impl Default for TechNode {
    fn default() -> Self {
        // 45 nm standard cell (~0.8 um^2/NAND2), 200 mm^2 reference die
        // (the minimum chip size estimate of [38] the paper uses).
        TechNode {
            nand2_um2: 0.8,
            chip_mm2: 200.0,
        }
    }
}

/// What to synthesize: a DRILL(d, m) engine complement for one switch.
#[derive(Clone, Copy, Debug)]
pub struct HwSpec {
    /// Output ports the engine chooses among.
    pub ports: usize,
    /// Random samples per decision.
    pub d: usize,
    /// Memory units per engine.
    pub m: usize,
    /// Forwarding engines on the switch (each gets its own DRILL logic).
    pub engines: usize,
    /// Width of a queue-occupancy counter in bits.
    pub counter_bits: u32,
}

impl HwSpec {
    /// The paper's reference configuration: DRILL(2, 1) on a 48-port,
    /// single-engine switch with 16-bit queue counters.
    pub fn paper_default() -> HwSpec {
        HwSpec {
            ports: 48,
            d: 2,
            m: 1,
            engines: 1,
            counter_bits: 16,
        }
    }
}

/// One line of the logic inventory.
#[derive(Clone, Debug)]
pub struct InventoryLine {
    /// Component name.
    pub component: &'static str,
    /// Instances across all engines.
    pub instances: u64,
    /// NAND2-equivalent gates per instance.
    pub gates_each: u64,
}

/// The roll-up result.
#[derive(Clone, Debug)]
pub struct AreaEstimate {
    /// Per-component inventory.
    pub inventory: Vec<InventoryLine>,
    /// Total NAND2-equivalent gates.
    pub total_gates: u64,
    /// Estimated area in mm².
    pub area_mm2: f64,
    /// Fraction of the reference chip.
    pub fraction_of_chip: f64,
}

/// NAND2-equivalents for common structures (standard rules of thumb:
/// a D flip-flop ≈ 6 gates, a full adder ≈ 6, a 2:1 mux bit ≈ 3).
const FF_GATES: u64 = 6;
const MUX2_PER_BIT: u64 = 3;

fn log2_ceil(n: usize) -> u32 {
    (usize::BITS - n.saturating_sub(1).leading_zeros()).max(1)
}

/// Estimate the logic DRILL(d, m) adds to a switch.
pub fn estimate(spec: &HwSpec, tech: &TechNode) -> AreaEstimate {
    let w = spec.counter_bits as u64;
    let idx_bits = log2_ceil(spec.ports) as u64;
    let e = spec.engines as u64;
    let d = spec.d as u64;
    let m = spec.m as u64;
    let considered = d + m;

    let mut inventory = vec![
        // One LFSR per random sample: idx_bits of state + feedback taps.
        InventoryLine {
            component: "LFSR random port sampler",
            instances: e * d,
            gates_each: idx_bits * FF_GATES + 4,
        },
        // Memory: m registers holding (port index, last observed depth).
        InventoryLine {
            component: "memory register (port id + depth)",
            instances: e * m,
            gates_each: (idx_bits + w) * FF_GATES,
        },
        // Comparator tree over d + m candidates: (d+m-1) W-bit compares.
        InventoryLine {
            component: "W-bit depth comparator",
            instances: e * considered.saturating_sub(1),
            gates_each: 6 * w,
        },
        // Muxes steering the winning (port, depth) through the tree.
        InventoryLine {
            component: "candidate select mux",
            instances: e * considered.saturating_sub(1),
            gates_each: (idx_bits + w) * MUX2_PER_BIT,
        },
        // Queue-depth read port decode per sample (address decode only;
        // the depth counters themselves already exist for microburst
        // monitoring, per §3.2.1).
        InventoryLine {
            component: "queue-depth read decode",
            instances: e * considered,
            gates_each: idx_bits * 4,
        },
        // Control FSM per engine.
        InventoryLine {
            component: "control FSM",
            instances: e,
            gates_each: 120,
        },
    ];
    inventory.retain(|l| l.instances > 0);

    let total_gates: u64 = inventory.iter().map(|l| l.instances * l.gates_each).sum();
    let area_mm2 = total_gates as f64 * tech.nand2_um2 / 1e6;
    AreaEstimate {
        inventory,
        total_gates,
        area_mm2,
        fraction_of_chip: area_mm2 / tech.chip_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_under_one_percent() {
        let est = estimate(&HwSpec::paper_default(), &TechNode::default());
        assert!(
            est.fraction_of_chip < 0.01,
            "fraction {}",
            est.fraction_of_chip
        );
        assert!(est.area_mm2 < 0.05, "area {}", est.area_mm2);
        assert!(est.total_gates > 100, "non-trivial logic");
    }

    #[test]
    fn even_many_engine_switches_stay_cheap() {
        let spec = HwSpec {
            engines: 48,
            ..HwSpec::paper_default()
        };
        let est = estimate(&spec, &TechNode::default());
        assert!(
            est.fraction_of_chip < 0.01,
            "48 engines: {}",
            est.fraction_of_chip
        );
    }

    #[test]
    fn area_grows_linearly_in_d_plus_m() {
        let t = TechNode::default();
        let base = estimate(&HwSpec::paper_default(), &t).total_gates;
        let big = estimate(
            &HwSpec {
                d: 4,
                m: 2,
                ..HwSpec::paper_default()
            },
            &t,
        )
        .total_gates;
        assert!(big > base);
        assert!(big < base * 4, "sub-quadratic growth");
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(48), 6);
        assert_eq!(log2_ceil(64), 6);
        assert_eq!(log2_ceil(65), 7);
        assert_eq!(log2_ceil(1), 1);
    }

    #[test]
    fn inventory_is_consistent() {
        let est = estimate(&HwSpec::paper_default(), &TechNode::default());
        let sum: u64 = est
            .inventory
            .iter()
            .map(|l| l.instances * l.gates_each)
            .sum();
        assert_eq!(sum, est.total_gates);
        // DRILL(2,1) with one engine: 2 LFSRs, 1 memory reg, 2 comparators.
        let find = |name: &str| {
            est.inventory
                .iter()
                .find(|l| l.component == name)
                .map(|l| l.instances)
                .unwrap_or(0)
        };
        assert_eq!(find("LFSR random port sampler"), 2);
        assert_eq!(find("memory register (port id + depth)"), 1);
        assert_eq!(find("W-bit depth comparator"), 2);
    }

    #[test]
    fn memoryless_config_has_no_memory_register() {
        let spec = HwSpec {
            m: 0,
            ..HwSpec::paper_default()
        };
        let est = estimate(&spec, &TechNode::default());
        assert!(est
            .inventory
            .iter()
            .all(|l| l.component != "memory register (port id + depth)"));
    }
}
