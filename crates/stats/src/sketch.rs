//! A deterministic, mergeable, KLL-style streaming quantile sketch.
//!
//! [`Distribution`](crate::Distribution) stores exact samples while runs
//! stay figure-scale, but a production-scale sweep observes millions of
//! flow completion times and an O(flows) sample store dies first on
//! memory, then on sort time. This sketch bounds memory at O(k log(n/k))
//! items while answering any rank query within a configured rank-error
//! bound.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic.** The classical KLL compactor flips a coin per
//!    compaction to decide whether the odd or even positions survive.
//!    That would break the repo-wide bit-replay contract (DESIGN.md §7),
//!    so this sketch replaces the coin with a per-level alternation bit
//!    that toggles on every compaction: the sketch state is a pure
//!    function of the insertion sequence, and `merge` is a pure function
//!    of the two operand states. Same stream (or same merge tree) in,
//!    bit-identical sketch out — on any machine, thread count, or shard
//!    count.
//! 2. **Mergeable.** `merge` concatenates levels and re-compacts, so
//!    cross-replication aggregation in the sweep executor keeps working
//!    through the same [`RunStats::merge`](../../drill-runtime) path.
//! 3. **std-only.** No allocator tricks, no external crates.
//!
//! # Structure
//!
//! Level `l` holds items that each represent `2^l` original samples
//! ("weight"). New samples enter level 0 with weight 1. When the sketch
//! exceeds its item budget, the lowest over-capacity level is sorted and
//! every other survivor is promoted to level `l+1` (weight doubles),
//! alternating between odd and even positions across compactions so
//! successive rank errors cancel instead of accumulating. Level
//! capacities decay geometrically (ratio 2/3, floor [`MIN_LEVEL_CAP`])
//! from `k` at the top level, giving the total budget
//! `sum_l cap(l) <= 3k + MIN_LEVEL_CAP * levels = O(k log(n/k))`.
//!
//! # Error bound
//!
//! [`rank_error_bound`](QuantileSketch::rank_error_bound) reports the
//! *configured* bound `1.5 * levels / k`: a deliberately conservative
//! envelope over the alternating compactor's observed error (the
//! random-coin KLL analysis gives O(1/k) w.h.p.; alternation behaves the
//! same in practice but trades the probabilistic worst case for
//! determinism). The differential goldens in `tests/` and the proptests
//! hold every p50/p90/p99 estimate to this bound against exact
//! order-statistics, so a regression in compaction quality fails loudly.

/// Default `k` (top-level capacity). 512 keeps the whole sketch around a
/// dozen kilobytes while holding observed rank error well under 1% at
/// 10M samples.
pub const DEFAULT_SKETCH_K: usize = 512;

/// Smallest per-level capacity: levels far from the top keep at least
/// this many items so promotion cascades cannot thrash.
pub const MIN_LEVEL_CAP: usize = 8;

/// A deterministic KLL-style quantile sketch over finite `f64` samples.
///
/// Non-finite samples are a caller bug (same contract as
/// [`Distribution`](crate::Distribution)) and panic in debug builds.
#[derive(Clone, Debug)]
pub struct QuantileSketch {
    /// `compactors[l]` holds items of weight `2^l`, unsorted between
    /// compactions.
    compactors: Vec<Vec<f64>>,
    /// Top-level capacity knob.
    k: usize,
    /// Bit `l` chooses whether the next compaction of level `l` keeps the
    /// odd or even sorted positions; toggled each compaction so errors
    /// alternate in sign and cancel.
    alternate: u64,
    /// Exact number of samples observed.
    count: u64,
    /// Exact extrema (quantile 0/1 never suffer sketch error).
    min: f64,
    max: f64,
}

impl QuantileSketch {
    /// An empty sketch with the default accuracy knob.
    pub fn new() -> QuantileSketch {
        QuantileSketch::with_k(DEFAULT_SKETCH_K)
    }

    /// An empty sketch with top-level capacity `k` (higher = more
    /// accurate, more memory). `k` is clamped to at least
    /// [`MIN_LEVEL_CAP`].
    pub fn with_k(k: usize) -> QuantileSketch {
        QuantileSketch {
            compactors: vec![Vec::new()],
            k: k.max(MIN_LEVEL_CAP),
            alternate: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The accuracy knob this sketch was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Exact number of samples observed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact minimum sample, or 0 if empty.
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample, or 0 if empty.
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Observe one value.
    #[inline]
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.compactors[0].push(x);
        if self.retained() > self.budget() {
            self.compress();
        }
    }

    /// Merge all of `other`'s mass into `self`. Deterministic: the result
    /// is a pure function of the two operand states, so any fixed merge
    /// order (e.g. the sweep executor's slot order) reproduces bit-
    /// identical sketches regardless of thread or shard count.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.is_empty() {
            return;
        }
        while self.compactors.len() < other.compactors.len() {
            self.compactors.push(Vec::new());
        }
        for (l, items) in other.compactors.iter().enumerate() {
            self.compactors[l].extend_from_slice(items);
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        // Mix the alternation phases so the merged state keeps varying
        // its survivor parity; XOR keeps this a pure function of inputs.
        self.alternate ^= other.alternate;
        if self.retained() > self.budget() {
            self.compress();
        }
    }

    /// Number of items currently retained across all levels — the
    /// sketch's memory footprint in samples. Bounded by
    /// [`budget`](QuantileSketch::budget) (plus the one item being
    /// inserted), i.e. O(k log(n/k)), never O(n).
    pub fn retained(&self) -> usize {
        self.compactors.iter().map(|c| c.len()).sum()
    }

    /// Total item budget at the current level count:
    /// `sum_l cap(l) <= 3k + MIN_LEVEL_CAP * levels`.
    pub fn budget(&self) -> usize {
        (0..self.compactors.len()).map(|l| self.cap(l)).sum()
    }

    /// Number of levels currently in use.
    pub fn levels(&self) -> usize {
        self.compactors.len()
    }

    /// The configured rank-error envelope for quantile queries: an
    /// estimate for the `q`-quantile lands within `bound * count` ranks
    /// of the exact order statistic. Conservative by design (observed
    /// error runs an order of magnitude lower); pinned against exact
    /// quantiles by the differential goldens.
    pub fn rank_error_bound(&self) -> f64 {
        1.5 * self.compactors.len() as f64 / self.k as f64
    }

    /// Capacity of level `l`: decays by 2/3 per level below the top,
    /// floored at [`MIN_LEVEL_CAP`]. Integer arithmetic only, so the
    /// schedule is identical on every platform.
    fn cap(&self, l: usize) -> usize {
        let depth = self.compactors.len() - 1 - l;
        let mut cap = self.k;
        for _ in 0..depth {
            cap = (cap * 2).div_ceil(3);
            if cap <= MIN_LEVEL_CAP {
                return MIN_LEVEL_CAP;
            }
        }
        cap.max(MIN_LEVEL_CAP)
    }

    /// Compact until back under budget: sort the lowest over-capacity
    /// level and promote alternating survivors (weight doubles).
    fn compress(&mut self) {
        while self.retained() > self.budget() {
            let Some(l) = (0..self.compactors.len())
                .find(|&l| self.compactors[l].len() > self.cap(l))
                .or_else(|| (0..self.compactors.len()).find(|&l| self.compactors[l].len() >= 2))
            else {
                return;
            };
            if self.compactors[l].len() < 2 {
                return;
            }
            self.compact_level(l);
        }
    }

    fn compact_level(&mut self, l: usize) {
        if l + 1 == self.compactors.len() {
            self.compactors.push(Vec::new());
        }
        let mut items = std::mem::take(&mut self.compactors[l]);
        items.sort_unstable_by(|a, b| a.total_cmp(b));
        let keep_odd = (self.alternate >> (l % 64)) & 1 == 1;
        self.alternate ^= 1 << (l % 64);
        // An odd-length level cannot halve cleanly: one boundary item
        // stays behind at its current weight (which end alternates with
        // the same phase bit, so neither tail is systematically favored).
        if items.len() % 2 == 1 {
            let held = if keep_odd {
                items.remove(0)
            } else {
                items.pop().expect("nonempty")
            };
            self.compactors[l].push(held);
        }
        let start = usize::from(keep_odd);
        let promoted: Vec<f64> = items.iter().copied().skip(start).step_by(2).collect();
        self.compactors[l + 1].extend_from_slice(&promoted);
    }

    /// All retained `(value, weight)` pairs, sorted by value.
    fn weighted_items(&self) -> Vec<(f64, u64)> {
        let mut out: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (l, items) in self.compactors.iter().enumerate() {
            let w = 1u64 << l;
            out.extend(items.iter().map(|&v| (v, w)));
        }
        out.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        out
    }

    /// Total retained weight (drifts from `count` only via odd-length
    /// compactions; queries normalize by this, keeping ranks
    /// self-consistent).
    fn total_weight(&self) -> u64 {
        self.compactors
            .iter()
            .enumerate()
            .map(|(l, c)| (c.len() as u64) << l)
            .sum()
    }

    /// Estimate the `q`-quantile (`q` in `[0, 1]`); 0 if empty. `q = 0`
    /// and `q = 1` return the exact extrema.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.is_empty() {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let items = self.weighted_items();
        let total = self.total_weight();
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for &(v, w) in &items {
            cum += w;
            if cum >= target {
                return v.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Estimated fraction of samples strictly greater than `x`; exact at
    /// and beyond the extrema.
    pub fn frac_above(&self, x: f64) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        if x >= self.max {
            return 0.0;
        }
        if x < self.min {
            return 1.0;
        }
        let total = self.total_weight();
        let above: u64 = self
            .weighted_items()
            .iter()
            .filter(|&&(v, _)| v > x)
            .map(|&(_, w)| w)
            .sum();
        above as f64 / total as f64
    }

    /// Export up to `points` `(value, cumulative fraction)` pairs evenly
    /// spaced in rank — the approximate counterpart of
    /// [`Distribution::cdf`](crate::Distribution::cdf). The final point
    /// is always `(max, 1.0)`.
    pub fn cdf(&self, points: usize) -> Vec<(f64, f64)> {
        if self.is_empty() || points == 0 {
            return Vec::new();
        }
        let items = self.weighted_items();
        let total = self.total_weight();
        let points = points.min(items.len()).max(1);
        let mut out = Vec::with_capacity(points);
        let mut cum = 0u64;
        let mut next = 1usize;
        for &(v, w) in &items {
            cum += w;
            // Emit when cumulative weight crosses the next of `points`
            // evenly spaced rank targets.
            while next <= points && cum as u128 * points as u128 >= next as u128 * total as u128 {
                out.push((v.clamp(self.min, self.max), cum as f64 / total as f64));
                next += 1;
            }
        }
        if let Some(last) = out.last_mut() {
            *last = (self.max, 1.0);
        }
        out
    }

    /// FNV-1a digest of the full sketch state (structure, item bits,
    /// alternation phase). Two sketches with equal digests answer every
    /// query identically; the determinism goldens compare digests across
    /// thread counts.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        let mut h = FNV_OFFSET;
        let mut mix = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.k as u64);
        mix(self.count);
        mix(self.alternate);
        mix(self.min.to_bits());
        mix(self.max.to_bits());
        for c in &self.compactors {
            mix(c.len() as u64);
            for &v in c {
                mix(v.to_bits());
            }
        }
        h
    }
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64) for test inputs.
    fn stream(seed: u64, n: usize) -> impl Iterator<Item = f64> {
        let mut s = seed;
        (0..n).map(move |_| {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 1e6
        })
    }

    /// Exact rank (number of samples <= v) in a sorted slice.
    fn rank_of(sorted: &[f64], v: f64) -> usize {
        sorted.partition_point(|&x| x <= v)
    }

    #[test]
    fn empty_sketch_queries() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.frac_above(1.0), 0.0);
        assert!(s.cdf(10).is_empty());
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let mut s = QuantileSketch::new();
        s.add(7.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 7.5);
        }
        assert_eq!(s.cdf(4), vec![(7.5, 1.0)]);
        assert_eq!(s.frac_above(7.5), 0.0);
        assert_eq!(s.frac_above(7.4), 1.0);
    }

    #[test]
    fn extremes_are_exact_after_heavy_compaction() {
        let mut s = QuantileSketch::with_k(32);
        for x in stream(1, 100_000) {
            s.add(x);
        }
        let mut all: Vec<f64> = stream(1, 100_000).collect();
        all.sort_unstable_by(|a, b| a.total_cmp(b));
        assert_eq!(s.quantile(0.0), all[0]);
        assert_eq!(s.quantile(1.0), *all.last().unwrap());
        assert_eq!(s.count(), 100_000);
    }

    #[test]
    fn quantiles_within_configured_rank_error() {
        for &n in &[100usize, 5_000, 200_000] {
            let mut s = QuantileSketch::new();
            for x in stream(42, n) {
                s.add(x);
            }
            let mut all: Vec<f64> = stream(42, n).collect();
            all.sort_unstable_by(|a, b| a.total_cmp(b));
            let eps = s.rank_error_bound();
            for q in [0.01, 0.1, 0.5, 0.9, 0.99, 0.999] {
                let est = s.quantile(q);
                let rank = rank_of(&all, est) as f64 / n as f64;
                assert!(
                    (rank - q).abs() <= eps,
                    "n={n} q={q}: estimated rank {rank:.5} off by more than eps={eps:.5}"
                );
            }
        }
    }

    #[test]
    fn merge_within_error_of_single_stream() {
        let n = 60_000;
        let mut whole = QuantileSketch::new();
        for x in stream(7, n) {
            whole.add(x);
        }
        // Same stream split into 4 uneven shards, merged in order.
        let all: Vec<f64> = stream(7, n).collect();
        let mut merged = QuantileSketch::new();
        for chunk in all.chunks(17_000) {
            let mut part = QuantileSketch::new();
            for &x in chunk {
                part.add(x);
            }
            merged.merge(&part);
        }
        assert_eq!(merged.count(), whole.count());
        let mut sorted = all.clone();
        sorted.sort_unstable_by(|a, b| a.total_cmp(b));
        let eps = merged.rank_error_bound().max(whole.rank_error_bound());
        for q in [0.05, 0.5, 0.9, 0.99] {
            let rm = rank_of(&sorted, merged.quantile(q)) as f64 / n as f64;
            let rw = rank_of(&sorted, whole.quantile(q)) as f64 / n as f64;
            assert!((rm - q).abs() <= eps, "merged q={q} rank {rm}");
            assert!((rw - q).abs() <= eps, "single-stream q={q} rank {rw}");
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = QuantileSketch::new();
        for x in stream(3, 10_000) {
            s.add(x);
        }
        let before = s.digest();
        s.merge(&QuantileSketch::new());
        assert_eq!(s.digest(), before, "merging an empty sketch changed state");
        let mut empty = QuantileSketch::new();
        empty.merge(&s);
        assert_eq!(empty.count(), s.count());
        assert_eq!(empty.quantile(0.5).to_bits(), s.quantile(0.5).to_bits());
    }

    #[test]
    fn identical_streams_give_bit_identical_sketches() {
        let build = || {
            let mut s = QuantileSketch::new();
            for x in stream(99, 50_000) {
                s.add(x);
            }
            s
        };
        assert_eq!(build().digest(), build().digest());
        // Merge determinism: same merge tree, same bits.
        let merge_tree = || {
            let mut acc = QuantileSketch::new();
            for seed in [1u64, 2, 3] {
                let mut part = QuantileSketch::new();
                for x in stream(seed, 20_000) {
                    part.add(x);
                }
                acc.merge(&part);
            }
            acc
        };
        assert_eq!(merge_tree().digest(), merge_tree().digest());
    }

    #[test]
    fn memory_stays_sublinear_at_ten_million_samples() {
        let mut s = QuantileSketch::new();
        let n = 10_000_000usize;
        for x in stream(5, n) {
            s.add(x);
        }
        assert_eq!(s.count(), n as u64);
        // O(k log(n/k)): budget is 3k plus the floor per level; with
        // k=512 and ~15 levels that is under 2k items — versus 10M
        // stored exactly. One extra item of slack for the in-flight push.
        let levels = s.levels();
        assert!(
            s.retained() <= 3 * DEFAULT_SKETCH_K + MIN_LEVEL_CAP * levels + 1,
            "retained {} items at n={n} (levels={levels})",
            s.retained()
        );
        assert!(levels <= 16 + DEFAULT_SKETCH_K.ilog2() as usize);
        // The tail is still usable: p99.99 of a uniform stream lands in
        // the top percent of the value range.
        assert!(s.quantile(0.9999) > 0.99e6 * 0.98);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite sample")]
    fn nan_samples_are_rejected() {
        QuantileSketch::new().add(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_out_of_range() {
        let mut s = QuantileSketch::new();
        s.add(1.0);
        s.quantile(1.5);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut s = QuantileSketch::with_k(64);
        for x in stream(11, 30_000) {
            s.add(x);
        }
        let cdf = s.cdf(50);
        assert!(!cdf.is_empty() && cdf.len() <= 50);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values monotone");
            assert!(w[0].1 <= w[1].1, "fractions monotone");
        }
        let last = cdf.last().unwrap();
        assert_eq!(last.0, s.max());
        assert!((last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frac_above_tracks_exact_within_bound() {
        let n = 40_000;
        let mut s = QuantileSketch::new();
        for x in stream(13, n) {
            s.add(x);
        }
        let mut all: Vec<f64> = stream(13, n).collect();
        all.sort_unstable_by(|a, b| a.total_cmp(b));
        let eps = s.rank_error_bound();
        for x in [1e5, 5e5, 9e5] {
            let exact = (n - rank_of(&all, x)) as f64 / n as f64;
            assert!(
                (s.frac_above(x) - exact).abs() <= eps,
                "frac_above({x}) = {} vs exact {exact}",
                s.frac_above(x)
            );
        }
    }
}
