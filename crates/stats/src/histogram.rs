//! Fixed-bin histograms.

/// An integer-valued histogram with unit-width bins `0, 1, 2, ...` and an
/// overflow bin.
///
/// Used for the paper's duplicate-ACK distribution (Figure 11a): bin `k`
/// counts flows that saw exactly `k` duplicate ACKs.
#[derive(Clone, Debug)]
pub struct Histogram {
    bins: Vec<u64>,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// A histogram with bins `0..max_value` plus an overflow bin.
    pub fn new(max_value: usize) -> Histogram {
        Histogram {
            bins: vec![0; max_value + 1],
            overflow: 0,
            total: 0,
        }
    }

    /// Count one observation of `value`.
    pub fn add(&mut self, value: usize) {
        if value < self.bins.len() {
            self.bins[value] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
    }

    /// Raw count in bin `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.bins.get(value).copied().unwrap_or(0)
    }

    /// Count in the overflow bin.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of observations equal to `value`.
    pub fn frac(&self, value: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(value) as f64 / self.total as f64
        }
    }

    /// Fraction of observations `>= value` (overflow included).
    pub fn frac_at_least(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let above: u64 = self.bins.iter().skip(value).sum::<u64>() + self.overflow;
        above as f64 / self.total as f64
    }

    /// Merge another histogram (must have identical bin count).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bins.len(), other.bins.len(), "bin layouts differ");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_fractions() {
        let mut h = Histogram::new(5);
        for v in [0, 0, 1, 3, 5, 9] {
            h.add(v);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(2), 0);
        assert_eq!(h.overflow(), 1); // the 9
        assert!((h.frac(0) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn frac_at_least_includes_overflow() {
        let mut h = Histogram::new(3);
        for v in [0, 1, 2, 3, 4, 50] {
            h.add(v);
        }
        assert!((h.frac_at_least(3) - 3.0 / 6.0).abs() < 1e-12);
        assert!((h.frac_at_least(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::new(2);
        a.add(0);
        a.add(5);
        let mut b = Histogram::new(2);
        b.add(0);
        b.add(1);
        a.merge(&b);
        assert_eq!(a.count(0), 2);
        assert_eq!(a.count(1), 1);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let h = Histogram::new(4);
        assert_eq!(h.frac(0), 0.0);
        assert_eq!(h.frac_at_least(2), 0.0);
    }
}
