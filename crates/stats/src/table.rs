//! Minimal aligned-text tables for the experiment binaries.

/// A right-aligned plain-text table.
///
/// Every figure/table harness in `drill-bench` prints its series through
/// this type so the outputs are uniform and diffable.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with columns padded to their widest cell.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align the first column (labels), right-align numbers.
                if i == 0 {
                    out.push_str(&format!("{:<w$}", c, w = width[i]));
                } else {
                    out.push_str(&format!("{:>w$}", c, w = width[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &width, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &width, &mut out);
        }
        out
    }
}

/// Format a float with 3 significant-looking decimals, trimming noise.
pub fn f3(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["scheme", "mean", "p99"]);
        t.row(["ECMP", "1.5", "12.0"]);
        t.row(["DRILL", "0.9", "3.2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("scheme"));
        assert!(lines[2].starts_with("ECMP"));
        assert!(lines[3].starts_with("DRILL"));
        // All rows are the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn f3_formats() {
        assert_eq!(f3(0.0), "0");
        assert_eq!(f3(0.12345), "0.1235");
        assert_eq!(f3(3.14159), "3.14");
        assert_eq!(f3(123.456), "123.5");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
