//! Statistics used throughout the DRILL reproduction.
//!
//! The paper's evaluation reports means, high percentiles (up to the
//! 99.99th), CDFs, time-averaged standard deviations of queue lengths, and
//! per-category (per-hop) breakdowns. This crate provides the corresponding
//! building blocks:
//!
//! * [`Moments`] — streaming count/mean/variance/min/max (Welford).
//! * [`Distribution`] — an exact sample store with quantiles and CDF export
//!   (flow-completion times per run are at most a few hundred thousand
//!   samples, so exact storage is both affordable and precise in the far
//!   tail, where approximate sketches would distort the 99.99th percentile).
//! * [`Histogram`] — fixed-bin counts (used for the dup-ACK distribution).
//! * [`Table`] — minimal aligned-text table formatting for the experiment
//!   binaries, so every figure harness prints rows the same way.

#![warn(missing_docs)]

mod histogram;
mod moments;
mod percentile;
mod table;

pub use histogram::Histogram;
pub use moments::{stdev_of, Moments};
pub use percentile::Distribution;
pub use table::{f3, Table};
