//! Statistics used throughout the DRILL reproduction.
//!
//! The paper's evaluation reports means, high percentiles (up to the
//! 99.99th), CDFs, time-averaged standard deviations of queue lengths, and
//! per-category (per-hop) breakdowns. This crate provides the corresponding
//! building blocks:
//!
//! * [`Moments`] — streaming count/mean/variance/min/max (Welford).
//! * [`Distribution`] — a sample store with quantiles and CDF export. Exact
//!   at figure scale (runs up to [`EXACT_SPILL_LIMIT`] samples keep every
//!   value, so the 99.99th percentile is a true order statistic), spilling
//!   into a bounded-memory [`QuantileSketch`] at production scale where
//!   O(flows) storage would dominate the simulator's footprint.
//! * [`QuantileSketch`] — the underlying deterministic, mergeable,
//!   KLL-style sketch (O(k log n) memory, configured rank-error bound).
//! * [`Histogram`] — fixed-bin counts (used for the dup-ACK distribution).
//! * [`Table`] — minimal aligned-text table formatting for the experiment
//!   binaries, so every figure harness prints rows the same way.

#![warn(missing_docs)]

mod histogram;
mod moments;
mod percentile;
mod sketch;
mod table;

pub use histogram::Histogram;
pub use moments::{stdev_of, Moments};
pub use percentile::{Distribution, EXACT_SPILL_LIMIT};
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_K, MIN_LEVEL_CAP};
pub use table::{f3, Table};
