//! Streaming first and second moments.

/// Count, mean, variance, min and max of a stream of `f64` observations,
/// computed in one pass with Welford's algorithm (numerically stable for
/// long streams of small latencies).
#[derive(Clone, Debug, Default)]
pub struct Moments {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Moments {
        Moments {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Observe one value.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// The raw accumulator fields `(n, mean, m2, min, max)`, for exact
    /// serialization (snapshots).
    pub fn state(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild an accumulator from [`state`](Moments::state) — bit-exact.
    pub fn from_state(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Moments {
        Moments {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Arithmetic mean, or 0 if empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0 if fewer than 2 observations.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    #[inline]
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` if empty).
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }
}

/// Population standard deviation of a slice in one pass.
///
/// Used for the paper's queue-length STDV metric (§3.2.3): at every sample
/// tick we compute the standard deviation *across* a group of queues, then
/// average those values over time with a [`Moments`].
pub fn stdev_of(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_sane() {
        let m = Moments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn matches_naive_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = Moments::new();
        for &x in &xs {
            m.add(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.variance() - 4.0).abs() < 1e-12);
        assert!((m.stdev() - 2.0).abs() < 1e-12);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        assert!((m.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut whole = Moments::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Moments::new();
        let mut b = Moments::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.add(x);
            } else {
                b.add(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = Moments::new();
        a.add(1.0);
        a.add(3.0);
        let b = Moments::new();
        let mean_before = a.mean();
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), mean_before);
        let mut c = Moments::new();
        c.merge(&a);
        assert_eq!(c.count(), 2);
        assert_eq!(c.mean(), mean_before);
    }

    #[test]
    fn stdev_of_slice() {
        assert_eq!(stdev_of(&[]), 0.0);
        assert_eq!(stdev_of(&[5.0]), 0.0);
        assert_eq!(stdev_of(&[3.0, 3.0, 3.0]), 0.0);
        let s = stdev_of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.0).abs() < 1e-12);
    }
}
