//! Sample distributions with quantile queries and CDF export: exact at
//! figure scale, spilling into a streaming sketch at production scale.
//!
//! The paper reports 99.99th percentiles of flow completion time; with the
//! original run sizes (10^4–10^6 flows) an exact sorted store is cheap and
//! avoids any tail distortion, so every figure golden stays bit-exact.
//! Production-scale topologies (k=32/64 fat-trees, three-tier Clos) push
//! sample counts past the point where O(flows) memory is acceptable, so a
//! [`Distribution`] silently converts itself into a deterministic
//! [`QuantileSketch`] once it crosses [`EXACT_SPILL_LIMIT`] samples. The
//! query API is identical in both modes; `count`, `mean`, `min` and `max`
//! stay exact forever, quantiles/CDF become rank-bounded estimates after
//! the spill (see [`Distribution::rank_error_bound`]).

use crate::sketch::QuantileSketch;

/// Samples kept exactly before a [`Distribution`] spills into the sketch.
/// 2^20 doubles (8 MiB) comfortably covers every figure-scale run — all
/// existing goldens stay in exact mode — while capping the worst case for
/// multi-million-flow scale runs.
pub const EXACT_SPILL_LIMIT: usize = 1 << 20;

#[derive(Clone, Debug)]
enum Store {
    /// Exact mode: samples kept verbatim, sorted lazily at query time.
    Exact { samples: Vec<f64>, sorted: bool },
    /// Spilled mode: bounded-memory streaming sketch.
    Sketch(QuantileSketch),
}

/// A store of `f64` samples with quantile queries: exact until
/// `spill_limit` samples, a deterministic mergeable quantile sketch after.
///
/// Samples in exact mode are kept unsorted until a query, then sorted
/// lazily and the sorted state is cached until the next insertion —
/// bit-compatible with the pre-sketch implementation, so small-scale
/// goldens are unaffected by the spill machinery.
#[derive(Clone, Debug)]
pub struct Distribution {
    store: Store,
    /// Exact running sum (both modes).
    sum: f64,
    /// Exact-mode capacity before converting to the sketch.
    spill_limit: usize,
}

impl Default for Distribution {
    fn default() -> Distribution {
        Distribution::new()
    }
}

impl Distribution {
    /// An empty distribution with the default spill threshold
    /// ([`EXACT_SPILL_LIMIT`]).
    pub fn new() -> Distribution {
        Distribution::with_spill_limit(EXACT_SPILL_LIMIT)
    }

    /// An empty distribution that stays exact for at most `limit` samples
    /// before spilling into the sketch. `limit = 0` starts in sketch mode
    /// immediately (see [`Distribution::sketched`]).
    pub fn with_spill_limit(limit: usize) -> Distribution {
        let store = if limit == 0 {
            Store::Sketch(QuantileSketch::new())
        } else {
            Store::Exact {
                samples: Vec::new(),
                sorted: true,
            }
        };
        Distribution {
            store,
            sum: 0.0,
            spill_limit: limit,
        }
    }

    /// An empty distribution in sketch mode from the first sample — the
    /// differential goldens use this to compare sketch estimates against
    /// the exact store on identical input.
    pub fn sketched() -> Distribution {
        Distribution::with_spill_limit(0)
    }

    /// Pre-allocate space for `n` samples (exact mode).
    pub fn with_capacity(n: usize) -> Distribution {
        Distribution {
            store: Store::Exact {
                samples: Vec::with_capacity(n),
                sorted: true,
            },
            sum: 0.0,
            spill_limit: EXACT_SPILL_LIMIT,
        }
    }

    /// Whether the store is still exact (quantiles are order statistics,
    /// not estimates).
    pub fn is_exact(&self) -> bool {
        matches!(self.store, Store::Exact { .. })
    }

    /// The exact samples, while in exact mode.
    pub fn exact_samples(&self) -> Option<&[f64]> {
        match &self.store {
            Store::Exact { samples, .. } => Some(samples),
            Store::Sketch(_) => None,
        }
    }

    /// Samples (exact mode) or sketch items (spilled mode) currently held
    /// in memory. After a spill this is O(k log n), not O(n).
    pub fn retained(&self) -> usize {
        match &self.store {
            Store::Exact { samples, .. } => samples.len(),
            Store::Sketch(s) => s.retained(),
        }
    }

    /// Rank-error envelope of quantile queries: `None` in exact mode,
    /// `Some(eps)` after spilling (estimates land within `eps * count`
    /// ranks of the exact order statistic; see
    /// [`QuantileSketch::rank_error_bound`]).
    pub fn rank_error_bound(&self) -> Option<f64> {
        match &self.store {
            Store::Exact { .. } => None,
            Store::Sketch(s) => Some(s.rank_error_bound()),
        }
    }

    /// FNV-1a digest of the full store state; bit-identical stores give
    /// equal digests. The sweep determinism goldens compare these across
    /// thread counts.
    pub fn digest(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf29ce484222325;
        const FNV_PRIME: u64 = 0x100000001b3;
        match &self.store {
            Store::Exact { samples, .. } => {
                let mut h = FNV_OFFSET;
                for &v in samples {
                    for b in v.to_bits().to_le_bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(FNV_PRIME);
                    }
                }
                h
            }
            Store::Sketch(s) => s.digest(),
        }
    }

    fn spill(&mut self) {
        if let Store::Exact { samples, .. } = &mut self.store {
            let mut sk = QuantileSketch::new();
            for &x in samples.iter() {
                sk.add(x);
            }
            self.store = Store::Sketch(sk);
        }
    }

    /// Observe one value. Non-finite values are a caller bug and panic in
    /// debug builds.
    #[inline]
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.sum += x;
        match &mut self.store {
            Store::Exact { samples, sorted } => {
                samples.push(x);
                *sorted = false;
                if samples.len() > self.spill_limit {
                    self.spill();
                }
            }
            Store::Sketch(s) => s.add(x),
        }
    }

    /// Merge all mass of `other` into `self`.
    ///
    /// Exact + exact under the spill threshold concatenates samples
    /// (quantiles over the merged store stay exact, bit-identical to the
    /// pre-sketch behaviour). Any other combination — either side already
    /// spilled, or the union crossing the threshold — produces a sketch.
    /// The result is a pure function of the operand states, so a fixed
    /// merge order reproduces identical stores on any thread count.
    pub fn merge(&mut self, other: &Distribution) {
        if other.is_empty() {
            // Merging in an empty store (whatever its mode) is a no-op —
            // in particular it must not spill an exact store.
            return;
        }
        self.sum += other.sum;
        match (&mut self.store, &other.store) {
            (Store::Exact { samples, sorted }, Store::Exact { samples: os, .. }) => {
                if samples.len() + os.len() <= self.spill_limit {
                    samples.extend_from_slice(os);
                    *sorted = samples.len() <= 1;
                } else {
                    self.spill();
                    if let (Store::Sketch(sk), Store::Exact { samples: os, .. }) =
                        (&mut self.store, &other.store)
                    {
                        for &x in os.iter() {
                            sk.add(x);
                        }
                    }
                }
            }
            (Store::Exact { .. }, Store::Sketch(osk)) => {
                self.spill();
                if let Store::Sketch(sk) = &mut self.store {
                    sk.merge(osk);
                }
            }
            (Store::Sketch(sk), Store::Exact { samples: os, .. }) => {
                for &x in os.iter() {
                    sk.add(x);
                }
            }
            (Store::Sketch(sk), Store::Sketch(osk)) => sk.merge(osk),
        }
    }

    /// Number of samples (exact in both modes).
    #[inline]
    pub fn count(&self) -> usize {
        match &self.store {
            Store::Exact { samples, .. } => samples.len(),
            Store::Sketch(s) => s.count() as usize,
        }
    }

    /// Whether no samples have been observed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Arithmetic mean, or 0 if empty (exact in both modes).
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.sum / self.count() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if let Store::Exact { samples, sorted } = &mut self.store {
            if !*sorted {
                samples.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
                *sorted = true;
            }
        }
    }

    /// The `q`-quantile (`q` in `[0,1]`); 0 if empty. Exact mode
    /// interpolates linearly between order statistics; sketch mode
    /// returns a rank-bounded estimate (extrema stay exact).
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        self.ensure_sorted();
        match &self.store {
            Store::Exact { samples, .. } => {
                let n = samples.len();
                if n == 0 {
                    return 0.0;
                }
                if n == 1 {
                    return samples[0];
                }
                let pos = q * (n - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = pos.ceil() as usize;
                let frac = pos - lo as f64;
                samples[lo] * (1.0 - frac) + samples[hi] * frac
            }
            Store::Sketch(s) => s.quantile(q),
        }
    }

    /// Convenience: the `p`-th percentile (`p` in `[0,100]`).
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Maximum sample, or 0 if empty (exact in both modes).
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        match &self.store {
            Store::Exact { samples, .. } => samples.last().copied().unwrap_or(0.0),
            Store::Sketch(s) => s.max(),
        }
    }

    /// Minimum sample, or 0 if empty (exact in both modes).
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        match &self.store {
            Store::Exact { samples, .. } => samples.first().copied().unwrap_or(0.0),
            Store::Sketch(s) => s.min(),
        }
    }

    /// Export up to `points` evenly spaced `(value, cumulative fraction)`
    /// pairs describing the empirical CDF — the series the paper's CDF
    /// figures plot. Exact order statistics before the spill, rank-bounded
    /// estimates after.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        match &self.store {
            Store::Exact { samples, .. } => {
                let n = samples.len();
                if n == 0 || points == 0 {
                    return Vec::new();
                }
                let points = points.min(n);
                let mut out = Vec::with_capacity(points);
                for k in 1..=points {
                    // Index of the k-th of `points` evenly spaced order
                    // statistics.
                    let i = (k * n).div_ceil(points) - 1;
                    out.push((samples[i], (i + 1) as f64 / n as f64));
                }
                out
            }
            Store::Sketch(s) => s.cdf(points),
        }
    }

    /// Fraction of samples strictly greater than `x` (exact before the
    /// spill, estimated after).
    pub fn frac_above(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        match &self.store {
            Store::Exact { samples, .. } => {
                if samples.is_empty() {
                    return 0.0;
                }
                let idx = samples.partition_point(|&v| v <= x);
                (samples.len() - idx) as f64 / samples.len() as f64
            }
            Store::Sketch(s) => s.frac_above(x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(xs: &[f64]) -> Distribution {
        let mut d = Distribution::new();
        for &x in xs {
            d.add(x);
        }
        d
    }

    #[test]
    fn empty_queries() {
        let mut d = Distribution::new();
        assert_eq!(d.quantile(0.5), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.max(), 0.0);
        assert!(d.cdf(10).is_empty());
        assert!(d.is_exact());
        assert_eq!(d.rank_error_bound(), None);
    }

    #[test]
    fn single_sample() {
        let mut d = dist(&[7.0]);
        assert_eq!(d.quantile(0.0), 7.0);
        assert_eq!(d.quantile(0.5), 7.0);
        assert_eq!(d.quantile(1.0), 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut d = dist(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(1.0), 40.0);
        assert!((d.quantile(0.5) - 25.0).abs() < 1e-12);
        assert!((d.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut d = dist(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
        assert_eq!(d.quantile(0.5), 3.0);
    }

    #[test]
    fn add_after_query_resorts() {
        let mut d = dist(&[1.0, 2.0, 3.0]);
        assert_eq!(d.max(), 3.0);
        d.add(0.5);
        assert_eq!(d.min(), 0.5);
        assert_eq!(d.count(), 4);
    }

    #[test]
    fn mean_and_merge() {
        let mut a = dist(&[1.0, 2.0]);
        let b = dist(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(), 4.0);
        assert!(a.is_exact(), "small merges stay exact");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut d = dist(
            &(0..1000)
                .map(|i| (i as f64 * 7919.0) % 100.0)
                .collect::<Vec<_>>(),
        );
        let cdf = d.cdf(50);
        assert_eq!(cdf.len(), 50);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values monotone");
            assert!(w[0].1 <= w[1].1, "fractions monotone");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_with_fewer_samples_than_points() {
        let mut d = dist(&[1.0, 2.0, 3.0]);
        let cdf = d.cdf(10);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[2], (3.0, 1.0));
    }

    #[test]
    fn frac_above() {
        let mut d = dist(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.frac_above(2.0), 0.5);
        assert_eq!(d.frac_above(0.0), 1.0);
        assert_eq!(d.frac_above(4.0), 0.0);
    }

    #[test]
    fn quantile_boundaries_are_exact_order_statistics() {
        let mut d = dist(&[30.0, 10.0, 20.0]);
        // p=0 and p=100 are the extreme order statistics, no interpolation
        // and no out-of-bounds `hi` index at pos = n-1.
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(1.0), 30.0);
        assert_eq!(d.percentile(0.0), 10.0);
        assert_eq!(d.percentile(100.0), 30.0);
        // An exact order-statistic position (frac == 0) returns the sample
        // verbatim, not a float-drifted interpolation.
        assert_eq!(d.quantile(0.5), 20.0);
    }

    #[test]
    fn single_sample_all_queries_agree() {
        let mut d = dist(&[7.5]);
        assert_eq!(d.min(), 7.5);
        assert_eq!(d.max(), 7.5);
        assert_eq!(d.mean(), 7.5);
        assert_eq!(d.percentile(0.0), 7.5);
        assert_eq!(d.percentile(50.0), 7.5);
        assert_eq!(d.percentile(100.0), 7.5);
        assert_eq!(d.cdf(5), vec![(7.5, 1.0)]);
        assert_eq!(d.frac_above(7.5), 0.0);
        assert_eq!(d.frac_above(7.4), 1.0);
    }

    #[test]
    fn empty_min_is_zero() {
        assert_eq!(Distribution::new().min(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_out_of_range() {
        dist(&[1.0]).quantile(1.0001);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_nan() {
        dist(&[1.0]).quantile(f64::NAN);
    }

    #[test]
    fn tail_percentile_hits_extreme_sample() {
        // Two outliers among 9998 small samples: the interpolated p99.99
        // (position 9998.0001 of 0..=9999) lands on the first outlier.
        let mut d = Distribution::with_capacity(10_000);
        for _ in 0..9_998 {
            d.add(1.0);
        }
        d.add(1000.0);
        d.add(1000.0);
        assert!(d.percentile(99.99) > 500.0);
        assert!(d.percentile(99.0) < 2.0);
    }

    // ---- spill / sketch-mode behaviour --------------------------------

    #[test]
    fn spills_past_the_limit_and_keeps_exact_fields_exact() {
        let mut d = Distribution::with_spill_limit(100);
        for i in 0..100 {
            d.add(i as f64);
        }
        assert!(d.is_exact());
        d.add(100.0);
        assert!(!d.is_exact(), "sample 101 crosses the limit");
        for i in 101..1000 {
            d.add(i as f64);
        }
        // Count, mean, extrema stay exact across the spill.
        assert_eq!(d.count(), 1000);
        assert!((d.mean() - 499.5).abs() < 1e-9);
        assert_eq!(d.min(), 0.0);
        assert_eq!(d.max(), 999.0);
        assert!(d.retained() < 1000);
        // Quantiles are estimates within the configured rank error.
        let eps = d.rank_error_bound().expect("sketch mode");
        let p50 = d.percentile(50.0);
        assert!((p50 - 499.5).abs() <= eps * 1000.0 + 1.0, "p50 = {p50}");
    }

    #[test]
    fn sketched_starts_in_sketch_mode() {
        let mut d = Distribution::sketched();
        assert!(!d.is_exact());
        assert!(d.is_empty());
        assert_eq!(d.quantile(0.5), 0.0);
        d.add(3.0);
        assert_eq!(d.quantile(0.5), 3.0);
        assert_eq!(d.count(), 1);
    }

    #[test]
    fn merge_with_empty_preserves_state_in_both_modes() {
        for mut d in [dist(&[1.0, 2.0, 3.0]), {
            let mut s = Distribution::sketched();
            for i in 0..50 {
                s.add(i as f64);
            }
            s
        }] {
            let count = d.count();
            let digest = d.digest();
            d.merge(&Distribution::new());
            d.merge(&Distribution::sketched());
            assert_eq!(d.count(), count);
            assert_eq!(d.digest(), digest, "empty merge changed the store");
        }
    }

    #[test]
    fn merge_spills_when_union_crosses_the_limit() {
        let mut a = Distribution::with_spill_limit(150);
        let mut b = Distribution::with_spill_limit(150);
        for i in 0..100 {
            a.add(i as f64);
            b.add((i + 100) as f64);
        }
        assert!(a.is_exact() && b.is_exact());
        a.merge(&b);
        assert!(!a.is_exact(), "200 samples exceed the 150 limit");
        assert_eq!(a.count(), 200);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 199.0);
    }

    #[test]
    fn mixed_mode_merges_cover_all_pairings() {
        let exact = dist(&[1.0, 2.0, 3.0]);
        let mut sk = Distribution::sketched();
        for i in 0..10 {
            sk.add(i as f64 + 10.0);
        }
        // exact <- sketch
        let mut a = exact.clone();
        a.merge(&sk);
        assert!(!a.is_exact());
        assert_eq!(a.count(), 13);
        assert_eq!(a.max(), 19.0);
        // sketch <- exact
        let mut b = sk.clone();
        b.merge(&exact);
        assert_eq!(b.count(), 13);
        assert_eq!(b.min(), 1.0);
        // sketch <- sketch
        let mut c = sk.clone();
        c.merge(&sk);
        assert_eq!(c.count(), 20);
    }

    #[test]
    fn sketch_digest_is_replay_stable() {
        let build = || {
            let mut d = Distribution::with_spill_limit(64);
            for i in 0..5_000 {
                d.add((i as f64 * 97.0) % 1013.0);
            }
            d
        };
        assert_eq!(build().digest(), build().digest());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-finite sample")]
    fn nan_add_is_rejected_in_debug() {
        Distribution::new().add(f64::NAN);
    }
}
