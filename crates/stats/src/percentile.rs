//! Exact sample distributions, quantiles and CDF export.

/// An exact store of `f64` samples with quantile queries.
///
/// The paper reports 99.99th percentiles of flow completion time; with the
/// run sizes used here (10^4–10^6 flows) an exact sorted store is cheap and
/// avoids the tail distortion of approximate quantile sketches.
///
/// Samples are kept unsorted until a query, then sorted lazily and the
/// sorted state is cached until the next insertion.
#[derive(Clone, Debug, Default)]
pub struct Distribution {
    samples: Vec<f64>,
    sorted: bool,
    sum: f64,
}

impl Distribution {
    /// An empty distribution.
    pub fn new() -> Distribution {
        Distribution {
            samples: Vec::new(),
            sorted: true,
            sum: 0.0,
        }
    }

    /// Pre-allocate space for `n` samples.
    pub fn with_capacity(n: usize) -> Distribution {
        Distribution {
            samples: Vec::with_capacity(n),
            sorted: true,
            sum: 0.0,
        }
    }

    /// Observe one value. Non-finite values are a caller bug and panic in
    /// debug builds.
    #[inline]
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample {x}");
        self.samples.push(x);
        self.sum += x;
        self.sorted = false;
    }

    /// Merge all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Distribution) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = self.samples.len() <= 1;
    }

    /// Number of samples.
    #[inline]
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been observed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.sum / self.samples.len() as f64
        }
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples
                .sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite samples"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q` in `[0,1]`) with linear interpolation between
    /// order statistics; 0 if empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        if n == 1 {
            return self.samples[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.samples[lo] * (1.0 - frac) + self.samples[hi] * frac
    }

    /// Convenience: the `p`-th percentile (`p` in `[0,100]`).
    pub fn percentile(&mut self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// Maximum sample, or 0 if empty.
    pub fn max(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// Minimum sample, or 0 if empty.
    pub fn min(&mut self) -> f64 {
        self.ensure_sorted();
        self.samples.first().copied().unwrap_or(0.0)
    }

    /// Export up to `points` evenly spaced `(value, cumulative fraction)`
    /// pairs describing the empirical CDF — the series the paper's CDF
    /// figures plot.
    pub fn cdf(&mut self, points: usize) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        if n == 0 || points == 0 {
            return Vec::new();
        }
        let points = points.min(n);
        let mut out = Vec::with_capacity(points);
        for k in 1..=points {
            // Index of the k-th of `points` evenly spaced order statistics.
            let i = (k * n).div_ceil(points) - 1;
            out.push((self.samples[i], (i + 1) as f64 / n as f64));
        }
        out
    }

    /// Fraction of samples strictly greater than `x`.
    pub fn frac_above(&mut self, x: f64) -> f64 {
        self.ensure_sorted();
        if self.samples.is_empty() {
            return 0.0;
        }
        let idx = self.samples.partition_point(|&v| v <= x);
        (self.samples.len() - idx) as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(xs: &[f64]) -> Distribution {
        let mut d = Distribution::new();
        for &x in xs {
            d.add(x);
        }
        d
    }

    #[test]
    fn empty_queries() {
        let mut d = Distribution::new();
        assert_eq!(d.quantile(0.5), 0.0);
        assert_eq!(d.mean(), 0.0);
        assert_eq!(d.max(), 0.0);
        assert!(d.cdf(10).is_empty());
    }

    #[test]
    fn single_sample() {
        let mut d = dist(&[7.0]);
        assert_eq!(d.quantile(0.0), 7.0);
        assert_eq!(d.quantile(0.5), 7.0);
        assert_eq!(d.quantile(1.0), 7.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let mut d = dist(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(1.0), 40.0);
        assert!((d.quantile(0.5) - 25.0).abs() < 1e-12);
        assert!((d.percentile(25.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut d = dist(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
        assert_eq!(d.quantile(0.5), 3.0);
    }

    #[test]
    fn add_after_query_resorts() {
        let mut d = dist(&[1.0, 2.0, 3.0]);
        assert_eq!(d.max(), 3.0);
        d.add(0.5);
        assert_eq!(d.min(), 0.5);
        assert_eq!(d.count(), 4);
    }

    #[test]
    fn mean_and_merge() {
        let mut a = dist(&[1.0, 2.0]);
        let b = dist(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut d = dist(
            &(0..1000)
                .map(|i| (i as f64 * 7919.0) % 100.0)
                .collect::<Vec<_>>(),
        );
        let cdf = d.cdf(50);
        assert_eq!(cdf.len(), 50);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0, "values monotone");
            assert!(w[0].1 <= w[1].1, "fractions monotone");
        }
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_with_fewer_samples_than_points() {
        let mut d = dist(&[1.0, 2.0, 3.0]);
        let cdf = d.cdf(10);
        assert_eq!(cdf.len(), 3);
        assert_eq!(cdf[2], (3.0, 1.0));
    }

    #[test]
    fn frac_above() {
        let mut d = dist(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.frac_above(2.0), 0.5);
        assert_eq!(d.frac_above(0.0), 1.0);
        assert_eq!(d.frac_above(4.0), 0.0);
    }

    #[test]
    fn quantile_boundaries_are_exact_order_statistics() {
        let mut d = dist(&[30.0, 10.0, 20.0]);
        // p=0 and p=100 are the extreme order statistics, no interpolation
        // and no out-of-bounds `hi` index at pos = n-1.
        assert_eq!(d.quantile(0.0), 10.0);
        assert_eq!(d.quantile(1.0), 30.0);
        assert_eq!(d.percentile(0.0), 10.0);
        assert_eq!(d.percentile(100.0), 30.0);
        // An exact order-statistic position (frac == 0) returns the sample
        // verbatim, not a float-drifted interpolation.
        assert_eq!(d.quantile(0.5), 20.0);
    }

    #[test]
    fn single_sample_all_queries_agree() {
        let mut d = dist(&[7.5]);
        assert_eq!(d.min(), 7.5);
        assert_eq!(d.max(), 7.5);
        assert_eq!(d.mean(), 7.5);
        assert_eq!(d.percentile(0.0), 7.5);
        assert_eq!(d.percentile(50.0), 7.5);
        assert_eq!(d.percentile(100.0), 7.5);
        assert_eq!(d.cdf(5), vec![(7.5, 1.0)]);
        assert_eq!(d.frac_above(7.5), 0.0);
        assert_eq!(d.frac_above(7.4), 1.0);
    }

    #[test]
    fn empty_min_is_zero() {
        assert_eq!(Distribution::new().min(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_out_of_range() {
        dist(&[1.0]).quantile(1.0001);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_rejects_nan() {
        dist(&[1.0]).quantile(f64::NAN);
    }

    #[test]
    fn tail_percentile_hits_extreme_sample() {
        // Two outliers among 9998 small samples: the interpolated p99.99
        // (position 9998.0001 of 0..=9999) lands on the first outlier.
        let mut d = Distribution::with_capacity(10_000);
        for _ in 0..9_998 {
            d.add(1.0);
        }
        d.add(1000.0);
        d.add(1000.0);
        assert!(d.percentile(99.99) > 500.0);
        assert!(d.percentile(99.0) < 2.0);
    }
}
