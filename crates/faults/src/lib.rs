//! The chaos engine: time-ordered fault-injection and recovery schedules.
//!
//! DRILL's resilience claims (§3.4, Figs. 10–12) are about behaviour
//! *through* failures, not just after a single static one. This crate
//! models that: a [`FaultSchedule`] is a deterministic, time-ordered list
//! of [`FaultEvent`]s — link down/up, flap trains, switch crash + recover,
//! capacity degradation (exercising the Quiver's §3.4.3 capacity factors)
//! and lossy-link packet corruption — that the runtime drives through the
//! simulation. A [`FaultInjector`] owns the mutation of the `Topology`
//! plus the bookkeeping recovery needs (e.g. which links a switch crash
//! downed, so recovery revives exactly those).
//!
//! # Determinism contract
//!
//! A schedule is plain data: schedule + seed fully determine a run.
//! [`FaultSchedule::random_flaps`] derives its own RNG stream from the
//! seed (label `"fault-flaps"`), so generated schedules are reproducible
//! and independent of every other stream in the simulator.
//!
//! # Staged reaction
//!
//! The schedule records when faults *happen*; the runtime reacts in
//! stages. For [`FaultSchedule::detection_delay`] after each fault the
//! switches keep forwarding into dead ports (the graceful-degradation
//! window, packets blackholing with `DropReason::LinkDown`), then routing
//! and the symmetric-component decomposition are recomputed and installed
//! atomically at reconvergence time.

#![warn(missing_docs)]

use drill_net::{LinkId, NodeRef, SwitchId, Topology};
use drill_sim::{SimRng, Time};
use drill_telemetry::{fault_kind, FaultInfo};

/// What a fault event does to the topology.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail the first live switch-to-switch pair between `a` and `b`
    /// (either orientation). Panics at apply time if no live pair exists,
    /// matching the legacy `failed_links` validation.
    LinkDown {
        /// One endpoint switch.
        a: u32,
        /// The other endpoint switch.
        b: u32,
    },
    /// Restore the first failed pair between `a` and `b` (either
    /// orientation). A clean no-op when nothing is failed.
    LinkUp {
        /// One endpoint switch.
        a: u32,
        /// The other endpoint switch.
        b: u32,
    },
    /// Crash a switch: fail every live switch-to-switch pair incident to
    /// it. The injector remembers which, so recovery is exact.
    SwitchDown {
        /// The crashing switch.
        switch: u32,
    },
    /// Recover a crashed switch: restore exactly the pairs its crash
    /// downed. A clean no-op if the switch never crashed.
    SwitchUp {
        /// The recovering switch.
        switch: u32,
    },
    /// Scale both directions of the first pair between `a` and `b` to
    /// `num/den` of nominal capacity (integer fraction for exact
    /// determinism; `num >= den` restores nominal). Panics at apply time
    /// if no pair exists.
    Degrade {
        /// One endpoint switch.
        a: u32,
        /// The other endpoint switch.
        b: u32,
        /// Fraction numerator.
        num: u32,
        /// Fraction denominator (> 0).
        den: u32,
    },
    /// Set the random packet-loss probability (parts per million) on both
    /// directions of the first pair between `a` and `b`; `ppm = 0`
    /// clears. Panics at apply time if no pair exists.
    SetLoss {
        /// One endpoint switch.
        a: u32,
        /// The other endpoint switch.
        b: u32,
        /// Loss probability in parts per million (<= 1_000_000).
        ppm: u32,
    },
}

impl FaultKind {
    /// Whether applying this kind can change reachability (and therefore
    /// requires a routing reconvergence). Degradation and loss keep the
    /// graph intact — routes stay valid; only weights/quality change —
    /// but the symmetric-component decomposition depends on capacities,
    /// so [`FaultKind::Degrade`] still reconverges.
    pub fn needs_reconvergence(&self) -> bool {
        !matches!(self, FaultKind::SetLoss { .. })
    }

    /// Whether applying this kind can change *path structure*: the set of
    /// up links, and therefore distances and candidate sets.
    ///
    /// [`FaultKind::Degrade`] rescales a link's capacity but never removes
    /// it, so shortest-path routing (`RouteTable::compute`, a pure
    /// function of the up/down state) provably cannot change — the
    /// reconvergence may skip the BFS and only rebuild the capacity-
    /// dependent symmetric-component groups. [`FaultKind::SetLoss`]
    /// changes neither and skips reconvergence entirely.
    pub fn changes_reachability(&self) -> bool {
        !matches!(self, FaultKind::SetLoss { .. } | FaultKind::Degrade { .. })
    }

    /// The switches a fault physically touches: both link endpoints, or
    /// just the crashing/recovering switch. The first entry is the
    /// fault's *primary* switch — sharded runs attribute the strike to
    /// its owning shard (a link fault's `a` endpoint, by convention).
    pub fn involved_switches(&self) -> [Option<u32>; 2] {
        match *self {
            FaultKind::LinkDown { a, b }
            | FaultKind::LinkUp { a, b }
            | FaultKind::Degrade { a, b, .. }
            | FaultKind::SetLoss { a, b, .. } => [Some(a), Some(b)],
            FaultKind::SwitchDown { switch } | FaultKind::SwitchUp { switch } => {
                [Some(switch), None]
            }
        }
    }
}

/// One scheduled fault: a kind and the instant it strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// When the physical fault happens.
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, time-ordered fault schedule.
///
/// Events are kept sorted by time; equal timestamps preserve insertion
/// order (stable), so a schedule's construction order is part of its
/// identity and replays bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Per-switch failure-detection delay: how long after each fault the
    /// reconvergence (routing recompute + symmetric re-decomposition)
    /// fires. During this window packets blackhole into dead ports.
    pub detection_delay: Time,
    events: Vec<FaultEvent>,
}

/// Default detection delay: 1 ms, a conservative fast-failover detector
/// (BFD-ish), far below the legacy 50 ms OSPF-style `ospf_delay`.
pub const DEFAULT_DETECTION_DELAY: Time = Time::from_millis(1);

impl Default for FaultSchedule {
    fn default() -> Self {
        FaultSchedule::new(DEFAULT_DETECTION_DELAY)
    }
}

impl FaultSchedule {
    /// An empty schedule with the given detection delay.
    pub fn new(detection_delay: Time) -> FaultSchedule {
        FaultSchedule {
            detection_delay,
            events: Vec::new(),
        }
    }

    /// Insert an event, keeping the list time-sorted (stable on ties).
    pub fn push(&mut self, at: Time, kind: FaultKind) -> &mut Self {
        let idx = self.events.partition_point(|e| e.at <= at);
        self.events.insert(idx, FaultEvent { at, kind });
        self
    }

    /// The events, chronological.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The latest event time, if any.
    pub fn last_at(&self) -> Option<Time> {
        self.events.last().map(|e| e.at)
    }

    /// Schedule one link flap: down at `down_at`, back up at `up_at`.
    pub fn link_flap(&mut self, a: u32, b: u32, down_at: Time, up_at: Time) -> &mut Self {
        assert!(up_at > down_at, "flap must come back up after going down");
        self.push(down_at, FaultKind::LinkDown { a, b });
        self.push(up_at, FaultKind::LinkUp { a, b })
    }

    /// Schedule a train of `count` flaps starting at `start`: each flap
    /// holds the link down for `downtime`, flaps repeat every `period`
    /// (`period > downtime`).
    pub fn flap_train(
        &mut self,
        a: u32,
        b: u32,
        start: Time,
        period: Time,
        downtime: Time,
        count: usize,
    ) -> &mut Self {
        assert!(period > downtime, "flap period must exceed the downtime");
        assert!(downtime > Time::ZERO, "downtime must be positive");
        let mut at = start;
        for _ in 0..count {
            self.link_flap(a, b, at, at + downtime);
            at += period;
        }
        self
    }

    /// Schedule a switch crash at `down_at` recovering at `up_at`.
    pub fn switch_outage(&mut self, switch: u32, down_at: Time, up_at: Time) -> &mut Self {
        assert!(up_at > down_at, "recovery must follow the crash");
        self.push(down_at, FaultKind::SwitchDown { switch });
        self.push(up_at, FaultKind::SwitchUp { switch })
    }

    /// Degrade a link to `num/den` of nominal over `[start, end)`,
    /// restoring full capacity at `end`.
    #[allow(clippy::too_many_arguments)]
    pub fn degrade_window(
        &mut self,
        a: u32,
        b: u32,
        num: u32,
        den: u32,
        start: Time,
        end: Time,
    ) -> &mut Self {
        assert!(end > start, "degradation window must have positive length");
        self.push(start, FaultKind::Degrade { a, b, num, den });
        self.push(
            end,
            FaultKind::Degrade {
                a,
                b,
                num: 1,
                den: 1,
            },
        )
    }

    /// Make a link lossy (`ppm` parts-per-million corruption) over
    /// `[start, end)`, clearing the loss at `end`.
    pub fn lossy_window(&mut self, a: u32, b: u32, ppm: u32, start: Time, end: Time) -> &mut Self {
        assert!(end > start, "loss window must have positive length");
        self.push(start, FaultKind::SetLoss { a, b, ppm });
        self.push(end, FaultKind::SetLoss { a, b, ppm: 0 })
    }

    /// Generate `count` randomized link flaps over `pairs` inside
    /// `[window_start, window_end)`, fully determined by `seed` (own RNG
    /// stream, label `"fault-flaps"`). Downtimes are drawn uniformly from
    /// `[min_down, max_down]`. Flaps on the same pair never overlap: each
    /// flap starts strictly after the pair's previous recovery, so every
    /// down is matched by exactly one up and the pair ends the schedule
    /// alive. Flaps that no longer fit the window are skipped (the result
    /// may hold fewer than `count` flaps on crowded windows).
    #[allow(clippy::too_many_arguments)]
    pub fn random_flaps(
        &mut self,
        pairs: &[(u32, u32)],
        seed: u64,
        count: usize,
        window_start: Time,
        window_end: Time,
        min_down: Time,
        max_down: Time,
    ) -> &mut Self {
        assert!(!pairs.is_empty(), "need at least one pair to flap");
        assert!(window_end > window_start, "empty flap window");
        assert!(max_down >= min_down, "max_down below min_down");
        assert!(min_down > Time::ZERO, "downtime must be positive");
        let mut rng = SimRng::derive(seed, "fault-flaps", 0);
        let window = (window_end - window_start).as_nanos();
        let down_span = (max_down - min_down).as_nanos() + 1;
        // Last recovery time per pair, to forbid overlapping flaps.
        let mut last_up = vec![Time::ZERO; pairs.len()];
        for _ in 0..count {
            let pi = rng.below(pairs.len());
            let (a, b) = pairs[pi];
            let offset = rng.below(window as usize) as u64;
            let downtime = min_down + Time::from_nanos(rng.below(down_span as usize) as u64);
            let mut down_at = window_start + Time::from_nanos(offset);
            if down_at <= last_up[pi] {
                down_at = last_up[pi] + Time::from_nanos(1);
            }
            let up_at = down_at + downtime;
            if up_at >= window_end {
                continue; // does not fit; skip deterministically
            }
            self.link_flap(a, b, down_at, up_at);
            last_up[pi] = up_at;
        }
        self
    }
}

/// A deliberate invariant violation for auditor negative tests: unlike a
/// [`FaultKind`] — a *modeled* failure the simulator is supposed to
/// handle gracefully — a sabotage breaks the simulator's own bookkeeping
/// the way a runtime bug would, so the invariant watchdogs can be proven
/// to catch real corruption, deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SabotageKind {
    /// Leak one packet handle: intern a dummy packet into an arena and
    /// drop the reference, so the arena live-count exceeds every holder
    /// walk forever after (trips `packet_conservation`).
    LeakPacket,
    /// Silently discard every data packet of `flow` at the receiving
    /// host. The sender retransmits into the void and never sees a new
    /// byte acknowledged (trips `stuck_flow`); the discarded packets are
    /// freed, so conservation stays clean.
    BlackholeFlow {
        /// The flow to blackhole.
        flow: u32,
    },
}

/// One scheduled sabotage: what breaks and when it starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SabotageSpec {
    /// When the sabotage takes effect.
    pub at: Time,
    /// What breaks.
    pub kind: SabotageKind,
}

/// Applies schedule events to a topology, carrying the state recovery
/// needs, and reports each application as a [`FaultInfo`] for telemetry.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    /// Per-crashed-switch list of the link pairs its crash downed (one id
    /// per pair, the switch-outbound direction).
    crashed: Vec<(u32, Vec<LinkId>)>,
}

impl FaultInjector {
    /// A fresh injector (no crash state).
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Apply one fault to the topology. Returns the [`FaultInfo`] probes
    /// record for it. Panics on structurally impossible events (failing or
    /// degrading a pair that does not exist), mirroring the legacy
    /// `failed_links` validation; recovery events are idempotent no-ops
    /// when there is nothing to recover.
    pub fn apply(&mut self, topo: &mut Topology, kind: FaultKind) -> FaultInfo {
        match kind {
            FaultKind::LinkDown { a, b } => {
                let ok = topo.fail_switch_link(SwitchId(a), SwitchId(b), 0)
                    || topo.fail_switch_link(SwitchId(b), SwitchId(a), 0);
                assert!(
                    ok,
                    "failed link ({a},{b}) matches no live switch-to-switch link in the topology"
                );
                FaultInfo {
                    kind: fault_kind::LINK_DOWN,
                    a,
                    b,
                    param: 0,
                }
            }
            FaultKind::LinkUp { a, b } => {
                let restored = topo.restore_switch_link(SwitchId(a), SwitchId(b), 0)
                    || topo.restore_switch_link(SwitchId(b), SwitchId(a), 0);
                FaultInfo {
                    kind: fault_kind::LINK_UP,
                    a,
                    b,
                    param: restored as u64,
                }
            }
            FaultKind::SwitchDown { switch } => {
                let mut downed = Vec::new();
                if !self.crashed.iter().any(|(s, _)| *s == switch) {
                    let ids: Vec<LinkId> = topo
                        .links()
                        .iter()
                        .filter(|l| {
                            l.up && l.src == NodeRef::Switch(SwitchId(switch))
                                && matches!(l.dst, NodeRef::Switch(_))
                        })
                        .map(|l| l.id)
                        .collect();
                    for id in ids {
                        if topo.fail_link_pair(id) {
                            downed.push(id);
                        }
                    }
                }
                let n = downed.len() as u64;
                self.crashed.push((switch, downed));
                FaultInfo {
                    kind: fault_kind::SWITCH_DOWN,
                    a: switch,
                    b: u32::MAX,
                    param: n,
                }
            }
            FaultKind::SwitchUp { switch } => {
                let mut restored = 0u64;
                if let Some(pos) = self.crashed.iter().position(|(s, _)| *s == switch) {
                    let (_, downed) = self.crashed.remove(pos);
                    for id in downed {
                        if topo.restore_link_pair(id) {
                            restored += 1;
                        }
                    }
                }
                FaultInfo {
                    kind: fault_kind::SWITCH_UP,
                    a: switch,
                    b: u32::MAX,
                    param: restored,
                }
            }
            FaultKind::Degrade { a, b, num, den } => {
                let ok = topo.degrade_switch_link(SwitchId(a), SwitchId(b), 0, num, den)
                    || topo.degrade_switch_link(SwitchId(b), SwitchId(a), 0, num, den);
                assert!(
                    ok,
                    "degraded link ({a},{b}) matches no switch-to-switch link in the topology"
                );
                FaultInfo {
                    kind: fault_kind::DEGRADE,
                    a,
                    b,
                    param: ((num as u64) << 32) | den as u64,
                }
            }
            FaultKind::SetLoss { a, b, ppm } => {
                let ok = topo.set_switch_link_loss(SwitchId(a), SwitchId(b), 0, ppm)
                    || topo.set_switch_link_loss(SwitchId(b), SwitchId(a), 0, ppm);
                assert!(
                    ok,
                    "lossy link ({a},{b}) matches no switch-to-switch link in the topology"
                );
                FaultInfo {
                    kind: fault_kind::SET_LOSS,
                    a,
                    b,
                    param: ppm as u64,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drill_net::{leaf_spine, LeafSpineSpec, DEFAULT_PROP};

    fn topo() -> Topology {
        leaf_spine(&LeafSpineSpec {
            spines: 2,
            leaves: 2,
            hosts_per_leaf: 1,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: DEFAULT_PROP,
        })
    }

    #[test]
    fn schedule_stays_time_sorted_and_stable() {
        let mut s = FaultSchedule::new(Time::from_micros(100));
        s.push(Time::from_millis(3), FaultKind::LinkDown { a: 0, b: 2 });
        s.push(Time::from_millis(1), FaultKind::LinkDown { a: 1, b: 2 });
        s.push(Time::from_millis(3), FaultKind::LinkUp { a: 0, b: 2 });
        let times: Vec<u64> = s.events().iter().map(|e| e.at.as_millis() as u64).collect();
        assert_eq!(times, vec![1, 3, 3]);
        // Ties keep insertion order: the LinkDown pushed first stays first.
        assert!(matches!(s.events()[1].kind, FaultKind::LinkDown { .. }));
        assert!(matches!(s.events()[2].kind, FaultKind::LinkUp { .. }));
        assert_eq!(s.last_at(), Some(Time::from_millis(3)));
    }

    #[test]
    fn flap_train_alternates_down_up() {
        let mut s = FaultSchedule::default();
        s.flap_train(
            0,
            2,
            Time::from_millis(1),
            Time::from_millis(2),
            Time::from_micros(500),
            3,
        );
        assert_eq!(s.len(), 6);
        let mut down = 0i32;
        for e in s.events() {
            match e.kind {
                FaultKind::LinkDown { .. } => down += 1,
                FaultKind::LinkUp { .. } => down -= 1,
                _ => panic!("unexpected kind"),
            }
            assert!((0..=1).contains(&down), "never two downs in a row");
        }
        assert_eq!(down, 0, "every down matched by an up");
    }

    #[test]
    fn random_flaps_are_deterministic_and_non_overlapping() {
        let pairs = [(0u32, 2u32), (0, 3), (1, 2), (1, 3)];
        let build = |seed| {
            let mut s = FaultSchedule::default();
            s.random_flaps(
                &pairs,
                seed,
                16,
                Time::from_millis(1),
                Time::from_millis(40),
                Time::from_micros(100),
                Time::from_millis(2),
            );
            s
        };
        assert_eq!(build(7), build(7), "same seed, same schedule");
        assert_ne!(build(7), build(8), "different seed, different schedule");
        let s = build(7);
        assert!(!s.is_empty());
        // Per pair: strictly alternating down/up, chronological.
        for &(a, b) in &pairs {
            let mut down: Option<Time> = None;
            for e in s.events() {
                match e.kind {
                    FaultKind::LinkDown { a: x, b: y } if (x, y) == (a, b) => {
                        assert!(down.is_none(), "pair ({a},{b}) downed twice");
                        down = Some(e.at);
                    }
                    FaultKind::LinkUp { a: x, b: y } if (x, y) == (a, b) => {
                        let d = down.take().expect("up without a down");
                        assert!(e.at > d);
                    }
                    _ => {}
                }
            }
            assert!(down.is_none(), "pair ({a},{b}) ends the schedule up");
        }
    }

    #[test]
    fn injector_link_down_then_up_round_trips() {
        let mut t = topo();
        let mut inj = FaultInjector::new();
        // Leaves are switches 0,1; spines 2,3 in the builder's order.
        let info = inj.apply(&mut t, FaultKind::LinkDown { a: 0, b: 2 });
        assert_eq!(info.kind, fault_kind::LINK_DOWN);
        assert!(t.ports_to_switch(SwitchId(0), SwitchId(2)).is_empty());
        let info = inj.apply(&mut t, FaultKind::LinkUp { a: 0, b: 2 });
        assert_eq!(info.param, 1, "restored one pair");
        assert_eq!(t.ports_to_switch(SwitchId(0), SwitchId(2)).len(), 1);
        // Restoring again is a clean no-op.
        let info = inj.apply(&mut t, FaultKind::LinkUp { a: 0, b: 2 });
        assert_eq!(info.param, 0);
        t.validate();
    }

    #[test]
    #[should_panic(expected = "matches no live switch-to-switch link")]
    fn injector_panics_on_unknown_link_down() {
        let mut t = topo();
        FaultInjector::new().apply(&mut t, FaultKind::LinkDown { a: 0, b: 1 });
    }

    #[test]
    fn switch_crash_downs_and_recovery_restores_exactly_its_links() {
        let mut t = topo();
        let mut inj = FaultInjector::new();
        // Fail leaf0-spine2 independently, then crash spine 2.
        inj.apply(&mut t, FaultKind::LinkDown { a: 0, b: 2 });
        let info = inj.apply(&mut t, FaultKind::SwitchDown { switch: 2 });
        assert_eq!(info.param, 1, "only leaf1-spine2 was still alive");
        assert!(t.ports_to_switch(SwitchId(1), SwitchId(2)).is_empty());
        // Recovery restores only what the crash downed: leaf0-spine2 stays
        // failed (it fell independently).
        let info = inj.apply(&mut t, FaultKind::SwitchUp { switch: 2 });
        assert_eq!(info.param, 1);
        assert_eq!(t.ports_to_switch(SwitchId(1), SwitchId(2)).len(), 1);
        assert!(t.ports_to_switch(SwitchId(0), SwitchId(2)).is_empty());
        // Recovering a never-crashed switch is a no-op.
        let info = inj.apply(&mut t, FaultKind::SwitchUp { switch: 3 });
        assert_eq!(info.param, 0);
        t.validate();
    }

    #[test]
    fn degrade_and_loss_apply_in_either_orientation() {
        let mut t = topo();
        let mut inj = FaultInjector::new();
        // Stated spine-first: the injector must find the leaf->spine pair.
        let info = inj.apply(
            &mut t,
            FaultKind::Degrade {
                a: 2,
                b: 0,
                num: 1,
                den: 10,
            },
        );
        assert_eq!(info.param, (1u64 << 32) | 10);
        let degraded = t
            .links()
            .iter()
            .filter(|l| l.rate_bps == 1_000_000_000)
            .count();
        assert_eq!(degraded, 2, "both directions scaled");
        inj.apply(
            &mut t,
            FaultKind::SetLoss {
                a: 0,
                b: 2,
                ppm: 50_000,
            },
        );
        assert_eq!(t.links().iter().filter(|l| l.loss_ppm == 50_000).count(), 2);
        t.validate();
    }

    #[test]
    fn reconvergence_need_is_kind_dependent() {
        assert!(FaultKind::LinkDown { a: 0, b: 2 }.needs_reconvergence());
        assert!(FaultKind::SwitchUp { switch: 1 }.needs_reconvergence());
        assert!(FaultKind::Degrade {
            a: 0,
            b: 2,
            num: 1,
            den: 2
        }
        .needs_reconvergence());
        assert!(!FaultKind::SetLoss {
            a: 0,
            b: 2,
            ppm: 100
        }
        .needs_reconvergence());
    }

    #[test]
    fn reachability_change_is_kind_dependent() {
        assert!(FaultKind::LinkDown { a: 0, b: 2 }.changes_reachability());
        assert!(FaultKind::LinkUp { a: 0, b: 2 }.changes_reachability());
        assert!(FaultKind::SwitchDown { switch: 1 }.changes_reachability());
        assert!(FaultKind::SwitchUp { switch: 1 }.changes_reachability());
        // Degrade reconverges (group weights depend on capacity) but can
        // never change routes.
        let degrade = FaultKind::Degrade {
            a: 0,
            b: 2,
            num: 1,
            den: 2,
        };
        assert!(degrade.needs_reconvergence());
        assert!(!degrade.changes_reachability());
        assert!(!FaultKind::SetLoss {
            a: 0,
            b: 2,
            ppm: 100
        }
        .changes_reachability());
    }

    #[test]
    fn involved_switches_cover_every_kind() {
        assert_eq!(
            FaultKind::LinkDown { a: 3, b: 7 }.involved_switches(),
            [Some(3), Some(7)]
        );
        assert_eq!(
            FaultKind::SetLoss { a: 1, b: 2, ppm: 9 }.involved_switches(),
            [Some(1), Some(2)]
        );
        assert_eq!(
            FaultKind::SwitchDown { switch: 5 }.involved_switches(),
            [Some(5), None]
        );
        assert_eq!(
            FaultKind::SwitchUp { switch: 5 }.involved_switches(),
            [Some(5), None]
        );
    }
}
