//! Figure 2: mean queue-length STDV vs number of forwarding engines, under
//! (a) 80% and (b) 30% load.
//!
//! Methodology (§3.2.3): Clos fabric, flow sizes/interarrivals from the
//! trace-driven distribution, open-loop packet trains (no TCP control
//! loop), queue lengths sampled every 10 µs; the metric is the standard
//! deviation of each leaf's uplink queues and of the spine downlinks
//! toward each leaf, averaged over time.
//!
//! Paper scale: 48 spines x 48 leaves x 48 hosts. The series are ECMP,
//! per-packet Random, per-packet RR, DRILL(2,1), DRILL(12,1), DRILL(2,11).

use drill_bench::{banner, base_config, Scale};
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::{Scheme, SweepSpec, TopoSpec};
use drill_stats::{f3, Table};

fn schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ecmp,
        Scheme::Random,
        Scheme::RoundRobin,
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
        Scheme::Drill {
            d: 12,
            m: 1,
            shim: false,
        },
        Scheme::Drill {
            d: 2,
            m: 11,
            shim: false,
        },
    ]
}

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 2: queue-length STDV vs engines (a: 80% load, b: 30% load)",
        scale,
    );

    let n = scale.dim(4, 8, 48);
    let engines_axis: Vec<usize> = match scale {
        Scale::Quick => vec![1, 4],
        Scale::Default => vec![1, 4, 12],
        Scale::Full => vec![1, 2, 4, 8, 16, 32, 48],
    };
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    println!("topology: {n} spines x {n} leaves x {n} hosts/leaf (paper: 48x48x48)\n");

    let loads = [0.8, 0.3];
    let mut base = base_config(topo, Scheme::Ecmp, loads[0], scale);
    base.raw_packet_mode = true;
    base.queue_limit_bytes = 20_000_000;
    base.workload.burst_sigma = 2.0;
    base.sample_queues = true;
    base.drain = drill_sim::Time::from_millis(5);
    let res = SweepSpec::new(base)
        .schemes(schemes())
        .loads(loads.to_vec())
        .engines(engines_axis.clone())
        .run();

    for (li, &load) in loads.iter().enumerate() {
        let mut header = vec!["engines".to_string()];
        header.extend(schemes().iter().map(|s| s.name()));
        let mut t = Table::new(header);
        for (ei, &engines) in engines_axis.iter().enumerate() {
            let mut row = vec![engines.to_string()];
            for si in 0..schemes().len() {
                row.push(f3(res.get(0, li, ei, 0, si).queue_stdv.mean()));
            }
            t.row(row);
        }
        println!(
            "({}) {}% load — mean queue length STDV [packets]",
            if load > 0.5 { "a" } else { "b" },
            (load * 100.0) as u32
        );
        println!("{}", t.render());
    }
    println!("expected shape (paper): DRILL(2,1) well below Random/RR at all engine");
    println!("counts; ECMP far above all per-packet schemes; the gap grows with load.");
}
