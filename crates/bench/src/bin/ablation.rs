//! Design-choice ablations.
//!
//! Three mechanisms DESIGN.md calls out get switched off one at a time:
//!
//! 1. **Queue-visibility lag** (§3.2.1) — the paper's conclusion names
//!    "the effect of delayed queue information in switches with multiple
//!    forwarding engines" as future work; this harness measures it.
//! 2. **The reordering shim** (§3.3) — DRILL with/without.
//! 3. **Symmetric-component decomposition** (§3.4) — DRILL under failures
//!    with/without asymmetry handling.

use drill_bench::{banner, base_config, Scale};
use drill_net::{HopClass, LeafSpineSpec};
use drill_runtime::{random_leaf_spine_failures, Scheme, SweepSpec, TopoSpec};
use drill_stats::{f3, Table};

fn main() {
    let scale = Scale::from_env();
    banner("Ablations: visibility lag, shim, asymmetry handling", scale);

    let leaves = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });

    // ---- 1. Delayed queue information vs engines ------------------------
    println!("(1) queue-visibility lag x forwarding engines, DRILL(2,1), 80% load");
    println!("    (raw packet mode, queue-length STDV metric)\n");
    let engines_axis = vec![1usize, 4, 16];
    let mut lag_base = base_config(topo.clone(), Scheme::drill_no_shim(), 0.8, scale);
    lag_base.raw_packet_mode = true;
    lag_base.sample_queues = true;
    lag_base.queue_limit_bytes = 20_000_000;
    lag_base.workload.burst_sigma = 2.0;
    lag_base.drain = drill_sim::Time::from_millis(5);
    let res = SweepSpec::new(lag_base)
        .engines(engines_axis.clone())
        .variants(vec!["lagged", "perfect"])
        .configure(|cfg, p| cfg.model_commit = p.variant == "lagged")
        .run();
    let mut t = Table::new(["engines", "lagged info (paper model)", "perfect info"]);
    for (ei, &e) in engines_axis.iter().enumerate() {
        t.row([
            e.to_string(),
            f3(res.get(0, 0, ei, 0, 0).queue_stdv.mean()),
            f3(res.get(0, 0, ei, 1, 0).queue_stdv.mean()),
        ]);
    }
    println!("{}", t.render());

    // ---- 2. Shim on/off --------------------------------------------------
    println!("(2) the reordering shim, 80% load TCP workload\n");
    let res = SweepSpec::new(base_config(
        topo.clone(),
        Scheme::drill_default(),
        0.8,
        scale,
    ))
    .schemes(vec![Scheme::drill_default(), Scheme::drill_no_shim()])
    .run()
    .into_stats();
    let mut t = Table::new(["variant", "mean FCT [ms]", "flows w/ dupACK", "retx"]);
    for s in &res {
        t.row([
            s.scheme.clone(),
            f3(s.fct_ms.mean()),
            format!("{:.4}", s.dupacks.frac_at_least(1)),
            s.retransmissions.to_string(),
        ]);
    }
    println!("{}", t.render());

    // ---- 3. Asymmetry handling under failures ---------------------------
    println!("(3) symmetric decomposition under 2 link failures, 70% load\n");
    let failures = random_leaf_spine_failures(&topo.build(), 2, drill_bench::seed_from_env());
    let mut asym_base = base_config(topo, Scheme::drill_default(), 0.7, scale);
    asym_base.failed_links = failures;
    let res = SweepSpec::new(asym_base)
        .variants(vec!["groups", "naive"])
        .configure(|cfg, p| cfg.asymmetry_handling = p.variant == "groups")
        .run()
        .into_stats();
    let mut t = Table::new([
        "variant",
        "mean FCT [ms]",
        "p99.9 [ms]",
        "hop1 q [us]",
        "retx",
    ]);
    for (label, s) in ["with groups (§3.4)", "without (naive)"].iter().zip(&res) {
        let mut fct = s.fct_ms.clone();
        t.row([
            label.to_string(),
            f3(s.fct_ms.mean()),
            f3(fct.percentile(99.9)),
            f3(s.hops.mean_wait_us(HopClass::LeafUp)),
            s.retransmissions.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("notes: (1) is the paper's stated future work — lag barely hurts DRILL(2,1)");
    println!("at few engines and grows with engine count; (2) the shim trades a hair of");
    println!("latency for an order less reordering visible to TCP; (3) grouping protects");
    println!("elephants' bandwidth (see examples/failure_asymmetry.rs) at some cost in");
    println!("path diversity for short flows on small fabrics.");
}
