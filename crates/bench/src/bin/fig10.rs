//! Figure 10: a VL2 three-stage Clos (16 ToRs x 20 hosts at 1G, 8 Agg, 4
//! Intermediate switches, 10G core) under (a) 20% and (b) 70% load — FCT
//! CDFs.

use drill_bench::{banner, base_config, cdf_table, fct_schemes, sweep_grid, Scale};
use drill_net::Vl2Spec;
use drill_runtime::TopoSpec;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 10: VL2 three-stage Clos", scale);

    let spec = match scale {
        Scale::Full => Vl2Spec::paper(),
        _ => Vl2Spec {
            tors: scale.dim(4, 8, 16),
            aggs: scale.dim(2, 4, 8),
            ints: scale.dim(2, 4, 4),
            hosts_per_tor: scale.dim(4, 10, 20),
            ..Vl2Spec::paper()
        },
    };
    println!(
        "topology: {} ToRs x {} hosts at 1G, {} Agg, {} Int, 10G core (paper: 16/20/8/4)\n",
        spec.tors, spec.hosts_per_tor, spec.aggs, spec.ints
    );
    let topo = TopoSpec::Vl2(spec);

    let schemes = fct_schemes();
    let loads = [0.2, 0.7];
    let base = base_config(topo, schemes[0], loads[0], scale);
    let mut grid = sweep_grid(base, &schemes, &loads);
    for (li, &load) in loads.iter().enumerate() {
        println!(
            "({}) {}% load — FCT [ms] at CDF fractions",
            if load < 0.5 { "a" } else { "b" },
            (load * 100.0) as u32
        );
        println!("{}", cdf_table(&schemes, &mut grid[li], 12));
    }
    println!("expected shape (paper): DRILL keeps FCT short in 3-stage Clos networks;");
    println!("the ordering matches the 2-stage results, with larger gaps at 70% load.");
}
