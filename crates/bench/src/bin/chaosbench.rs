//! chaosbench: graceful degradation under chaos schedules.
//!
//! Sweeps DRILL against ECMP and Presto across link-flap rates: every
//! scheme runs the *same* deterministic fault schedule (randomized flap
//! trains over leaf-spine pairs, `FaultSchedule::random_flaps`), so the
//! comparison isolates how each load balancer degrades while routing is
//! stale and how it recovers after the staged reconvergence.
//!
//! Output:
//!
//! * **stdout** — a deterministic per-point table (flat index, scheme,
//!   flap count, event count, raw IEEE-754 bits of the headline metrics).
//!   Two runs at different `DRILL_THREADS` must produce byte-identical
//!   stdout; `scripts/chaosbench.sh` diffs them.
//! * **stderr** — one JSON line `{"bench": "chaosbench", ...}` for the
//!   timing harness.
//! * `--json <path>` — write the full machine-readable result set
//!   (per-point FCT in/out of fault windows, degradation ratios,
//!   blackhole counts, reconvergence counts, plus a DRILL-vs-ECMP
//!   summary) to `path`, e.g. `results/chaosbench.json`.
//!
//! "DRILL bounded vs ECMP" compares the worst *absolute* in-window mean
//! FCT (the paper's Fig 11 axis). The self-relative in-window/clear ratio
//! is also reported, but boundedness is not judged on it: a scheme with a
//! worse fault-free baseline gets a flattering ratio for free.
//!
//! Flags: `--quick` forces `DRILL_SCALE=quick` sizing; `--json <path>`
//! as above. `DRILL_SCALE` / `DRILL_SEED` / `DRILL_THREADS` apply as in
//! the other harness binaries.

use std::fmt::Write as _;
use std::time::Instant;

use drill_bench::{banner, base_config, seed_from_env, Scale};
use drill_faults::FaultSchedule;
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::{random_leaf_spine_failures, run_many, RunStats, Scheme, TopoSpec};
use drill_sim::Time;
use drill_stats::f3;

/// Per-switch failure-detection delay for every chaos point: fast-ish
/// failover (well under the legacy 50 ms OSPF default) so quick runs see
/// several full degrade-reconverge-recover cycles.
const DETECTION: Time = Time::from_micros(300);

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::from_env()
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args[i + 1].clone());
    let seed = seed_from_env();
    banner("chaosbench: FCT degradation under link-flap chaos", scale);

    let n = scale.dim(4, 8, 16);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let schemes = [Scheme::Ecmp, Scheme::presto(), Scheme::drill_default()];
    let flap_axis: Vec<usize> = match scale {
        Scale::Quick => vec![0, 2, 6],
        Scale::Default => vec![0, 4, 8, 16],
        Scale::Full => vec![0, 8, 16, 32, 64],
    };

    // One schedule per flap rate, shared by every scheme: the comparison
    // is apples-to-apples on the identical fault sequence.
    let built = topo.build();
    let pairs = random_leaf_spine_failures(&built, (n * n / 2).max(2), seed);
    let mk_sched = |flaps: usize, duration: Time| -> Option<FaultSchedule> {
        if flaps == 0 {
            return None;
        }
        let mut s = FaultSchedule::new(DETECTION);
        s.random_flaps(
            &pairs,
            seed ^ (flaps as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            flaps,
            Time::from_micros(500),
            duration,
            Time::from_micros(200),
            Time::from_millis(1),
        );
        Some(s)
    };

    let mut cfgs = Vec::new();
    for &flaps in &flap_axis {
        for &scheme in &schemes {
            let mut cfg = base_config(topo.clone(), scheme, 0.4, scale);
            cfg.faults = mk_sched(flaps, cfg.duration);
            cfgs.push(cfg);
        }
    }

    let start = Instant::now();
    let stats = run_many(&cfgs);
    let wall = start.elapsed().as_secs_f64();

    println!("# chaosbench point table (bit-exact; independent of DRILL_THREADS)");
    println!("# idx scheme flaps faults reconv blackholed window_ns events fct_mean_bits fault_fct_bits clear_fct_bits ratio_bits completion_bits");
    let mut total_events = 0u64;
    for (i, st) in stats.iter().enumerate() {
        let flaps = flap_axis[i / schemes.len()];
        total_events += st.events;
        println!(
            "{} {} {} {} {} {} {} {} {:#018x} {:#018x} {:#018x} {:#018x} {:#018x}",
            i,
            st.scheme.replace(' ', "_"),
            flaps,
            st.fault_events,
            st.reconvergences,
            st.fault_blackholed,
            st.fault_window_ns,
            st.events,
            st.mean_fct_ms().to_bits(),
            st.fct_fault_ms.mean().to_bits(),
            st.fct_clear_ms.mean().to_bits(),
            st.fault_fct_ratio().to_bits(),
            st.completion_rate().to_bits(),
        );
    }

    // Human-readable summary. Boundedness is judged on the *absolute*
    // in-window FCT (the paper's Fig 11 comparison): a self-relative ratio
    // would reward a scheme for having a worse fault-free baseline.
    println!();
    println!("worst fault-window FCT (mean in-window ms; self-relative ratio in parens):");
    let worst = |name: &str, f: &dyn Fn(&RunStats) -> f64| -> f64 {
        stats
            .iter()
            .filter(|s| s.scheme == name)
            .map(f)
            .fold(0.0, f64::max)
    };
    let fault_fct = |s: &RunStats| s.fct_fault_ms.mean();
    let ratio = |s: &RunStats| s.fault_fct_ratio();
    let (ecmp_w, presto_w, drill_w) = (
        worst("ECMP", &fault_fct),
        worst("Presto", &fault_fct),
        worst("DRILL(2,1)", &fault_fct),
    );
    println!(
        "  ECMP       {} (x{})",
        f3(ecmp_w),
        f3(worst("ECMP", &ratio))
    );
    println!(
        "  Presto     {} (x{})",
        f3(presto_w),
        f3(worst("Presto", &ratio))
    );
    println!(
        "  DRILL(2,1) {} (x{})",
        f3(drill_w),
        f3(worst("DRILL(2,1)", &ratio))
    );
    println!(
        "  DRILL bounded vs ECMP: {}",
        if drill_w <= ecmp_w { "yes" } else { "no" }
    );

    if let Some(path) = json_path {
        let json = render_json(seed, scale, &flap_axis, &schemes, &stats, wall);
        if let Some(dir) = std::path::Path::new(&path).parent() {
            std::fs::create_dir_all(dir).ok();
        }
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        // stderr, not stdout: the point table must stay byte-identical
        // across runs whose --json paths differ (scripts/chaosbench.sh).
        eprintln!("wrote {path}");
    }

    eprintln!(
        "{{\"bench\": \"chaosbench\", \"points\": {}, \"events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}}}",
        stats.len(),
        total_events,
        wall,
        total_events as f64 / wall
    );
}

fn render_json(
    seed: u64,
    scale: Scale,
    flap_axis: &[usize],
    schemes: &[Scheme],
    stats: &[RunStats],
    wall: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"bench\": \"chaosbench\",");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(
        out,
        "  \"detection_delay_us\": {},",
        DETECTION.as_nanos() / 1000
    );
    let _ = writeln!(out, "  \"wall_secs\": {wall:.3},");
    let _ = writeln!(out, "  \"points\": [");
    for (i, st) in stats.iter().enumerate() {
        let flaps = flap_axis[i / schemes.len()];
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"scheme\": \"{}\",", st.scheme);
        let _ = writeln!(out, "      \"flaps\": {flaps},");
        let _ = writeln!(out, "      \"fault_events\": {},", st.fault_events);
        let _ = writeln!(out, "      \"reconvergences\": {},", st.reconvergences);
        let _ = writeln!(out, "      \"fault_blackholed\": {},", st.fault_blackholed);
        let _ = writeln!(
            out,
            "      \"fault_window_ms\": {:.6},",
            st.fault_window_ns as f64 / 1e6
        );
        let _ = writeln!(out, "      \"fct_mean_ms\": {:.6},", st.mean_fct_ms());
        let _ = writeln!(
            out,
            "      \"fct_fault_mean_ms\": {:.6},",
            st.fct_fault_ms.mean()
        );
        let _ = writeln!(
            out,
            "      \"fct_clear_mean_ms\": {:.6},",
            st.fct_clear_ms.mean()
        );
        let _ = writeln!(
            out,
            "      \"fault_fct_ratio\": {:.6},",
            st.fault_fct_ratio()
        );
        let _ = writeln!(out, "      \"flows_started\": {},", st.flows_started);
        let _ = writeln!(out, "      \"completion\": {:.6}", st.completion_rate());
        let _ = writeln!(out, "    }}{}", if i + 1 == stats.len() { "" } else { "," });
    }
    let _ = writeln!(out, "  ],");
    let worst = |name: &str, f: &dyn Fn(&RunStats) -> f64| -> f64 {
        stats
            .iter()
            .filter(|s| s.scheme == name)
            .map(f)
            .fold(0.0, f64::max)
    };
    let fault_fct = |s: &RunStats| s.fct_fault_ms.mean();
    let ratio = |s: &RunStats| s.fault_fct_ratio();
    let (ecmp_w, drill_w) = (worst("ECMP", &fault_fct), worst("DRILL(2,1)", &fault_fct));
    let _ = writeln!(out, "  \"summary\": {{");
    let _ = writeln!(out, "    \"ecmp_worst_fault_fct_ms\": {ecmp_w:.6},");
    let _ = writeln!(
        out,
        "    \"presto_worst_fault_fct_ms\": {:.6},",
        worst("Presto", &fault_fct)
    );
    let _ = writeln!(out, "    \"drill_worst_fault_fct_ms\": {drill_w:.6},");
    let _ = writeln!(
        out,
        "    \"ecmp_worst_ratio\": {:.6},",
        worst("ECMP", &ratio)
    );
    let _ = writeln!(
        out,
        "    \"presto_worst_ratio\": {:.6},",
        worst("Presto", &ratio)
    );
    let _ = writeln!(
        out,
        "    \"drill_worst_ratio\": {:.6},",
        worst("DRILL(2,1)", &ratio)
    );
    let _ = writeln!(out, "    \"drill_bounded_vs_ecmp\": {}", drill_w <= ecmp_w);
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    out
}
