//! Figure 9: over-subscription ratios — FCT CDFs at 80% load for (a) a
//! 1:1 fabric (20 spines) and (b) a 5:3 fabric (12 spines), 16 leaves x
//! 20 hosts, all links 10G.

use drill_bench::{banner, base_config, cdf_table, fct_schemes, sweep_grid, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::TopoSpec;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 9: 1:1 and 5:3 over-subscription, 80% load", scale);

    let leaves = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let schemes = fct_schemes();
    // Keep the paper's spine:host ratios at reduced scale.
    let spines_1to1 = hosts.div_ceil(1); // hosts * 10G / 10G uplinks = 1:1
    let spines_5to3 = (hosts * 3).div_ceil(5);

    for (label, spines) in [("a: 1:1", spines_1to1), ("b: 5:3", spines_5to3)] {
        let topo = TopoSpec::LeafSpine(LeafSpineSpec {
            spines,
            leaves,
            hosts_per_leaf: hosts,
            host_rate: 10_000_000_000,
            core_rate: 10_000_000_000,
            prop: drill_net::DEFAULT_PROP,
        });
        println!("({label}) {spines} spines x {leaves} leaves x {hosts} hosts");
        let base = base_config(topo, schemes[0], 0.8, scale);
        let mut grid = sweep_grid(base, &schemes, &[0.8]);
        println!("{}", cdf_table(&schemes, &mut grid[0], 12));
    }
    println!("expected shape (paper): no significant qualitative change across");
    println!("over-subscription ratios with identical load and link speeds; the");
    println!("scheme ordering (DRILL best, ECMP worst) is preserved in both.");
}
