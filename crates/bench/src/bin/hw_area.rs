//! §4 "Hardware and deployability considerations": DRILL's chip-area
//! overhead. The paper synthesizes <400 lines of Verilog and estimates
//! 0.04 mm², under 1% of a 200 mm² reference switch chip; this harness
//! reproduces the accounting with the analytical model in `drill-hw`.

use drill_hw::{estimate, HwSpec, TechNode};
use drill_stats::Table;

fn main() {
    println!("== Hardware area estimate (Verilog-substitute model) ==\n");
    let tech = TechNode::default();
    println!(
        "technology: {} um^2 per NAND2-equivalent gate, {} mm^2 reference die\n",
        tech.nand2_um2, tech.chip_mm2
    );

    let spec = HwSpec::paper_default();
    let est = estimate(&spec, &tech);
    println!(
        "DRILL({}, {}) on a {}-port, {}-engine switch with {}-bit queue counters:\n",
        spec.d, spec.m, spec.ports, spec.engines, spec.counter_bits
    );
    let mut t = Table::new(["component", "instances", "gates each", "gates total"]);
    for line in &est.inventory {
        t.row([
            line.component.to_string(),
            line.instances.to_string(),
            line.gates_each.to_string(),
            (line.instances * line.gates_each).to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("total gates:        {}", est.total_gates);
    println!(
        "estimated area:     {:.4} mm^2   (paper: 0.04 mm^2)",
        est.area_mm2
    );
    println!(
        "fraction of chip:   {:.4}%      (paper: < 1%)\n",
        est.fraction_of_chip * 100.0
    );

    // Sensitivity: engines and (d, m).
    let mut t = Table::new(["configuration", "gates", "area mm^2", "% of chip"]);
    for (label, spec) in [
        ("DRILL(2,1), 1 engine", HwSpec::paper_default()),
        (
            "DRILL(2,1), 48 engines",
            HwSpec {
                engines: 48,
                ..HwSpec::paper_default()
            },
        ),
        (
            "DRILL(12,1), 1 engine",
            HwSpec {
                d: 12,
                ..HwSpec::paper_default()
            },
        ),
        (
            "DRILL(2,11), 1 engine",
            HwSpec {
                m: 11,
                ..HwSpec::paper_default()
            },
        ),
        (
            "DRILL(2,1), 256 ports",
            HwSpec {
                ports: 256,
                ..HwSpec::paper_default()
            },
        ),
    ] {
        let e = estimate(&spec, &tech);
        t.row([
            label.to_string(),
            e.total_gates.to_string(),
            format!("{:.4}", e.area_mm2),
            format!("{:.4}", e.fraction_of_chip * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("conclusion (matches paper): DRILL's data-plane logic is a vanishing");
    println!("fraction of a switch chip and scales linearly in d + m and engines.");
}
