//! tracedump: decode a DRILL flight-recorder trace into human-readable
//! tables — the Fig. 2-style queue-depth timeline, per-packet trip
//! summaries, the reordering-degree histogram and per-engine decision
//! quality (§3.2.1: how often an engine's pick was the true shortest
//! queue).
//!
//! Modes:
//!
//! * default — run a small Fig. 2-shaped experiment (open-loop packet
//!   trains, DRILL(2,1), 2 engines) with the flight recorder attached,
//!   then analyze its trace in-process. `DRILL_SCALE` / `DRILL_SEED`
//!   apply as in the other harness binaries.
//! * `--trace <path>` — decode an existing `DRILLTRC` file (written via
//!   `ExperimentConfig::telemetry.trace_path`) and print the same tables.
//! * `--sabotage <leak|blackhole> [--audit-dir <dir>]` — run a small
//!   deterministic experiment with the `drill-audit` watchdogs attached
//!   and a deliberately broken runtime (a leaked arena handle or a
//!   blackholed flow). The trip dumps the snapshot ring, the faulted
//!   instant and `anomaly.meta` into `<dir>` (default
//!   `results/audit_demo`) and prints the typed report.
//! * `--replay-from <dir>` — automatic rewind-replay: parse
//!   `<dir>/anomaly.meta`, restore the newest clean ring snapshot with
//!   the flight recorder attached, re-run exactly the window up to the
//!   anomalous boundary, and print the decision-quality and queue tables
//!   for that window alone.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use drill_bench::{banner, base_config, seed_from_env, Scale};
use drill_faults::{SabotageKind, SabotageSpec};
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::run_recorded;
use drill_runtime::{
    run_audited, AuditSpec, ExperimentConfig, Scheme, Snapshot, TelemetrySpec, TopoSpec, World,
};
use drill_sim::Time;
use drill_stats::{f3, Table};
use drill_telemetry::analyze::{
    decision_quality, depth_stdev_timeline, fault_timeline, packet_trips, queue_timelines,
    reordering,
};
use drill_telemetry::{fault_kind, read_trace, write_trace, RingKind, Trace, TraceEvent};
use drill_telemetry::{FlightRecorder, QueueSampler};

/// Sampling bucket for the reconstructed queue timelines (Fig. 2 samples
/// every 10 µs).
const BUCKET: Time = Time::from_micros(10);

/// Cap on printed timeline rows; longer timelines are decimated evenly.
const MAX_ROWS: usize = 24;

fn recorded_trace() -> Trace {
    let scale = Scale::from_env();
    let n = scale.dim(4, 8, 16);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = base_config(
        topo,
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
        0.8,
        scale,
    );
    cfg.duration = Time::from_millis(2);
    cfg.drain = Time::from_millis(2);
    cfg.raw_packet_mode = true;
    cfg.queue_limit_bytes = 20_000_000;
    cfg.workload.burst_sigma = 2.0;
    cfg.engines = 2;
    cfg.telemetry = Some(TelemetrySpec::default());
    // A short chaos flap mid-run so the fault timeline below has content:
    // one leaf-spine pair dies at 0.5 ms and recovers at 1.5 ms.
    let pair = drill_runtime::random_leaf_spine_failures(&cfg.topo.build(), 1, seed_from_env())[0];
    let mut sched = drill_faults::FaultSchedule::new(Time::from_micros(200));
    sched.link_flap(
        pair.0,
        pair.1,
        Time::from_micros(500),
        Time::from_micros(1500),
    );
    cfg.faults = Some(sched);
    println!(
        "recording: {n}x{n}x{n} leaf-spine, DRILL(2,1), 2 engines, 80% load, seed {}",
        seed_from_env()
    );
    let (stats, tel) = run_recorded(&cfg);
    println!(
        "run: {} events, {} data pkts delivered, {} recorder events ({} overwritten)\n",
        stats.events,
        stats.data_pkts_delivered,
        tel.recorder.event_count(),
        tel.recorder.overwritten()
    );
    // Round-trip through the on-disk codec so both modes print from the
    // identical decoded representation.
    let mut buf = Vec::new();
    write_trace(&tel.recorder, &mut buf).expect("in-memory encode");
    read_trace(&mut &buf[..]).expect("in-memory decode")
}

fn header(trace: &Trace) {
    println!(
        "trace: {} switches x {} engines, {} rings, {} events, {} overwritten",
        trace.num_switches,
        trace.engines,
        trace.rings.len(),
        trace.event_count(),
        trace.overwritten()
    );
    // Per-engine event volume across all switches.
    let mut per_engine: BTreeMap<u16, usize> = BTreeMap::new();
    let mut host_events = 0usize;
    let mut control_events = 0usize;
    for ring in &trace.rings {
        match ring.kind {
            RingKind::Engine { engine, .. } => {
                *per_engine.entry(engine).or_default() += ring.events.len()
            }
            RingKind::Host => host_events += ring.events.len(),
            RingKind::Control => control_events += ring.events.len(),
        }
    }
    let mut t = Table::new(vec!["ring".to_string(), "events".to_string()]);
    for (e, n) in &per_engine {
        t.row(vec![format!("engine {e}"), n.to_string()]);
    }
    t.row(vec!["host".into(), host_events.to_string()]);
    t.row(vec!["control".into(), control_events.to_string()]);
    println!("{}", t.render());
}

/// The chaos-engine fault timeline: every fault application, coalesced
/// reconvergence and return-to-stability the control ring captured.
fn fault_report(trace: &Trace) {
    let tl = fault_timeline(trace);
    if tl.is_empty() {
        println!("no fault events in trace\n");
        return;
    }
    println!("fault timeline ({} control events):", tl.len());
    let mut t = Table::new(vec![
        "t [us]".to_string(),
        "event".to_string(),
        "a".to_string(),
        "b".to_string(),
        "param".to_string(),
    ]);
    for e in &tl {
        let cell = |v: u32| {
            if v == u32::MAX {
                "-".to_string()
            } else {
                v.to_string()
            }
        };
        t.row(vec![
            (e.t_ns / 1000).to_string(),
            fault_kind::name(e.kind).to_string(),
            cell(e.a),
            cell(e.b),
            e.param.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// The switch with the most enqueue events, and the set of ports its
/// engines actually chose (the load-balanced fabric ports — Fig. 2's
/// uplink group, recovered from the trace alone).
fn busiest_switch(trace: &Trace) -> Option<(u32, Vec<u16>)> {
    let mut enq: BTreeMap<u32, u64> = BTreeMap::new();
    let mut chosen: BTreeMap<u32, Vec<u16>> = BTreeMap::new();
    for ev in trace.merged_events() {
        match ev {
            TraceEvent::Enqueue { switch, .. } => *enq.entry(*switch).or_default() += 1,
            TraceEvent::EngineChoice { switch, choice, .. } => {
                let ports = chosen.entry(*switch).or_default();
                if !ports.contains(&choice.chosen) {
                    ports.push(choice.chosen);
                }
            }
            _ => {}
        }
    }
    let (&sw, _) = enq.iter().max_by_key(|&(_, n)| n)?;
    let mut ports = chosen.remove(&sw).unwrap_or_default();
    ports.sort_unstable();
    Some((sw, ports))
}

fn fig2_timeline(trace: &Trace) {
    let (sw, ports) = match busiest_switch(trace) {
        Some((sw, ports)) if ports.len() >= 2 => (sw, ports),
        _ => {
            println!("no switch with >=2 engine-chosen ports in trace; skipping timeline\n");
            return;
        }
    };
    let timelines = queue_timelines(trace, BUCKET);
    let stdev = depth_stdev_timeline(&timelines, sw, &ports);
    if stdev.is_empty() {
        println!("ports {ports:?} of switch {sw} have no depth samples; skipping timeline\n");
        return;
    }
    println!(
        "Fig. 2-style queue timeline — switch {sw}, fabric ports {ports:?}, {} µs buckets",
        BUCKET.as_nanos() / 1000
    );
    let mut hdr = vec!["t [us]".to_string()];
    hdr.extend(ports.iter().map(|p| format!("q{p} [pkts]")));
    hdr.push("stdev".into());
    let mut t = Table::new(hdr);
    let step = stdev.len().div_ceil(MAX_ROWS);
    let mut cursors = vec![0usize; ports.len()];
    let mut depths = vec![0u32; ports.len()];
    for (row, &(b, sd)) in stdev.iter().enumerate() {
        // Forward-fill each port's depth up to this bucket.
        for (i, p) in ports.iter().enumerate() {
            let series = &timelines[&(sw, *p)];
            while cursors[i] < series.len() && series[cursors[i]].0 <= b {
                depths[i] = series[cursors[i]].1;
                cursors[i] += 1;
            }
        }
        if row % step != 0 {
            continue;
        }
        let mut cells = vec![(b * BUCKET.as_nanos() / 1000).to_string()];
        cells.extend(depths.iter().map(|d| d.to_string()));
        cells.push(f3(sd));
        t.row(cells);
    }
    println!("{}", t.render());
    let mean_sd = stdev.iter().map(|&(_, s)| s).sum::<f64>() / stdev.len() as f64;
    println!("mean cross-port depth stdev: {} pkts\n", f3(mean_sd));
}

fn trip_summary(trace: &Trace) {
    let trips = packet_trips(trace);
    let mut delivered = 0u64;
    let mut dropped = 0u64;
    let mut lat_sum = 0u64;
    let mut lat_max = 0u64;
    let mut lats = 0u64;
    let mut hops_sum = 0u64;
    let mut wait_sum = 0u64;
    for trip in trips.values() {
        if trip.dropped {
            dropped += 1;
        }
        if trip.recv_ns.is_some() {
            delivered += 1;
            hops_sum += trip.hops as u64;
            wait_sum += trip.wait_ns;
        }
        if let Some(l) = trip.latency_ns() {
            lats += 1;
            lat_sum += l;
            lat_max = lat_max.max(l);
        }
    }
    println!(
        "packet trips: {} traced, {} delivered, {} dropped",
        trips.len(),
        delivered,
        dropped
    );
    if lats > 0 {
        println!(
            "latency (send->recv, {lats} complete trips): mean {} us, max {} us",
            f3(lat_sum as f64 / lats as f64 / 1000.0),
            f3(lat_max as f64 / 1000.0)
        );
    }
    if delivered > 0 {
        println!(
            "per delivered packet: mean {} hops, mean {} us queue+tx wait\n",
            f3(hops_sum as f64 / delivered as f64),
            f3(wait_sum as f64 / delivered as f64 / 1000.0)
        );
    }
}

fn reorder_report(trace: &Trace) {
    let rep = reordering(trace, 8);
    println!(
        "reordering: {} flows, {} deliveries, {} inversions ({}%)",
        rep.flows,
        rep.deliveries,
        rep.inversions,
        f3(100.0 * rep.inversions as f64 / rep.deliveries.max(1) as f64)
    );
    let mut t = Table::new(vec!["degree".to_string(), "count".to_string()]);
    for (d, &n) in rep.degree_hist.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let label = if d + 1 == rep.degree_hist.len() {
            format!(">={d}")
        } else {
            d.to_string()
        };
        t.row(vec![label, n.to_string()]);
    }
    println!("{}", t.render());
}

fn decision_report(trace: &Trace) {
    let dq = decision_quality(trace);
    if dq.is_empty() {
        println!("no engine-choice events in trace");
        return;
    }
    println!("engine decision quality (chosen vs true shortest queue, §3.2.1):");
    let mut t = Table::new(vec![
        "switch".to_string(),
        "engine".to_string(),
        "choices".to_string(),
        "optimal %".to_string(),
        "mean excess".to_string(),
        "max excess".to_string(),
    ]);
    // The busiest few (switch, engine) pairs, plus the aggregate.
    let mut rows: Vec<(&(u32, u16), &_)> = dq.iter().collect();
    rows.sort_by_key(|(_, q)| std::cmp::Reverse(q.choices));
    for ((sw, eng), q) in rows.iter().take(8) {
        t.row(vec![
            sw.to_string(),
            eng.to_string(),
            q.choices.to_string(),
            f3(100.0 * q.optimal_frac()),
            f3(q.mean_excess()),
            q.max_excess.to_string(),
        ]);
    }
    let mut total = drill_telemetry::analyze::DecisionQuality::default();
    for q in dq.values() {
        total.choices += q.choices;
        total.optimal += q.optimal;
        total.excess_sum += q.excess_sum;
        total.max_excess = total.max_excess.max(q.max_excess);
    }
    t.row(vec![
        "all".into(),
        "all".into(),
        total.choices.to_string(),
        f3(100.0 * total.optimal_frac()),
        f3(total.mean_excess()),
        total.max_excess.to_string(),
    ]);
    println!("{}", t.render());
}

/// The deterministic demo experiment shared by `--sabotage` and
/// `--replay-from`: both modes must rebuild the identical config, since a
/// ring snapshot only restores against the experiment shape that wrote
/// it. Closed-loop TCP (not raw packet trains) so the stuck-flow watchdog
/// has per-flow progress to observe.
fn audit_demo_cfg() -> ExperimentConfig {
    let n = 4;
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(
        topo,
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
        0.8,
    );
    cfg.duration = Time::from_millis(2);
    cfg.drain = Time::from_millis(2);
    cfg.queue_limit_bytes = 20_000_000;
    cfg.engines = 2;
    cfg
}

/// The audit knobs for the demo: boundaries every 5k events so the ring
/// holds several snapshots before the trip, and a stall threshold well
/// inside the 4 ms run so a blackholed flow is caught before drain ends.
fn audit_demo_spec() -> AuditSpec {
    AuditSpec {
        every_events: 5_000,
        stuck_after: Time::from_millis(1),
        ..AuditSpec::default()
    }
}

/// `--sabotage`: break the runtime on purpose, let the watchdogs trip,
/// and dump the diagnostics bundle for `--replay-from`.
fn sabotage_run(kind: &str, dir: &Path) {
    // The leak strikes mid-run so the ring holds clean snapshots first;
    // the blackhole starts at t=0 so flow 0 — the earliest arrival — is
    // swallowed from its very first data packet and can never complete.
    let (kind, at) = match kind {
        "leak" => (SabotageKind::LeakPacket, Time::from_micros(500)),
        "blackhole" => (SabotageKind::BlackholeFlow { flow: 0 }, Time::from_nanos(0)),
        other => panic!("unknown sabotage kind {other:?} (expected leak|blackhole)"),
    };
    let mut cfg = audit_demo_cfg();
    let mut spec = audit_demo_spec();
    spec.dump_dir = Some(dir.to_path_buf());
    cfg.audit = Some(spec);
    cfg.sabotage = Some(SabotageSpec { at, kind });
    println!(
        "sabotage: {kind:?} at {} us, audit dump dir {}",
        at.as_nanos() / 1000,
        dir.display()
    );
    let (stats, reports) = run_audited(&cfg);
    println!(
        "run: {} events, {} data pkts delivered, {} anomalies",
        stats.events, stats.data_pkts_delivered, stats.anomalies
    );
    for r in &reports {
        println!("anomaly: {r}");
    }
    assert!(
        !reports.is_empty(),
        "sabotaged run tripped no watchdog — the auditor missed it"
    );
    let mut names: Vec<String> = std::fs::read_dir(dir)
        .expect("audit dump dir")
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    println!("dumped: {}", names.join(", "));
    println!("\nnext: tracedump --replay-from {}", dir.display());
}

/// `--replay-from`: the automatic rewind-replay loop. Everything needed —
/// which snapshot to rewind to and how far to run — comes from
/// `anomaly.meta`; no knowledge of the original run is required beyond
/// the shared demo config.
fn replay_from(dir: &Path) {
    let meta_path = dir.join("anomaly.meta");
    let text = std::fs::read_to_string(&meta_path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", meta_path.display()));
    let kv: BTreeMap<&str, &str> = text.lines().filter_map(|l| l.split_once('=')).collect();
    let get = |k: &str| {
        *kv.get(k)
            .unwrap_or_else(|| panic!("anomaly.meta lacks {k}="))
    };
    let kind = get("kind");
    let at_ns: u64 = get("at_ns").parse().expect("at_ns");
    let events: u64 = get("events").parse().expect("events");
    let rewind = kv.get("rewind").copied().unwrap_or_else(|| {
        panic!("anomaly.meta has no rewind= line — the ring held no clean snapshot")
    });
    let rewind_events: u64 = get("rewind_events").parse().expect("rewind_events");
    println!(
        "anomaly: {kind} at {} us (event {events}); rewinding to {rewind} (event {rewind_events})",
        at_ns / 1000
    );

    let snap = Snapshot::load(dir.join(rewind))
        .unwrap_or_else(|e| panic!("cannot load ring snapshot {rewind}: {e}"));
    let mut cfg = audit_demo_cfg();
    // Stop the restored world exactly at the anomalous boundary: the
    // flight recorder then covers nothing but the rewind window.
    cfg.max_events = events;
    let tspec = TelemetrySpec::default();
    let recorder = FlightRecorder::new(
        cfg.topo.build().num_switches(),
        cfg.engines,
        tspec.ring_capacity,
    );
    let sampler = QueueSampler::new(tspec.sample_every);
    let w = World::restore_probed(&snap, &cfg, (recorder, sampler))
        .unwrap_or_else(|e| panic!("cannot restore {rewind}: {e}"));
    let (stats, (recorder, _sampler), _audit) = w.finish_parts();
    println!(
        "replayed window: events {rewind_events}..{} ({} recorder events)\n",
        stats.events.min(events),
        recorder.event_count()
    );

    let mut buf = Vec::new();
    write_trace(&recorder, &mut buf).expect("in-memory encode");
    let trace = read_trace(&mut &buf[..]).expect("in-memory decode");
    header(&trace);
    fig2_timeline(&trace);
    trip_summary(&trace);
    decision_report(&trace);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .map(|i| args[i + 1].clone())
    };
    if let Some(kind) = flag("--sabotage") {
        banner("tracedump: sabotage + audit dump", Scale::from_env());
        let dir = flag("--audit-dir").unwrap_or_else(|| "results/audit_demo".into());
        sabotage_run(&kind, &PathBuf::from(dir));
        return;
    }
    if let Some(dir) = flag("--replay-from") {
        banner(
            "tracedump: rewind-replay from audit dump",
            Scale::from_env(),
        );
        replay_from(&PathBuf::from(dir));
        return;
    }
    let trace = match args.iter().position(|a| a == "--trace") {
        Some(i) => {
            let path = args.get(i + 1).expect("--trace needs a file path");
            banner(
                "tracedump: flight-recorder trace analysis",
                Scale::from_env(),
            );
            let bytes =
                std::fs::read(path).unwrap_or_else(|e| panic!("cannot read trace {path}: {e}"));
            read_trace(&mut &bytes[..]).unwrap_or_else(|e| panic!("cannot decode {path}: {e}"))
        }
        None => {
            banner(
                "tracedump: record + analyze a Fig. 2-shaped run",
                Scale::from_env(),
            );
            recorded_trace()
        }
    };
    header(&trace);
    fault_report(&trace);
    fig2_timeline(&trace);
    trip_summary(&trace);
    reorder_report(&trace);
    decision_report(&trace);
}
