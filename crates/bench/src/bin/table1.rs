//! Table 1: synthetic workloads — Stride, Bijection (the paper's
//! "Random"), and Shuffle. Mean elephant throughput plus mean and 99.99th
//! percentile mice FCT, normalized to ECMP.
//!
//! Paper setup: 4 leaves x 4 spines, 8 hosts per leaf, all 1G links;
//! elephants (1 GB in the paper, size-scaled here) per pattern plus 50 KB
//! mice every 100 ms.

use drill_bench::{banner, base_config, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::{Scheme, SweepSpec, SyntheticMode, TopoSpec};
use drill_sim::Time;
use drill_stats::Table;
use drill_workload::TrafficPattern;

fn main() {
    let scale = Scale::from_env();
    banner("Table 1: synthetic workloads (normalized to ECMP)", scale);

    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 8,
        host_rate: 1_000_000_000,
        core_rate: 1_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    println!("topology: 4 spines x 4 leaves x 8 hosts, all 1G (paper-exact)\n");

    let synth = SyntheticMode {
        elephant_bytes: match scale {
            Scale::Quick => 2_000_000,
            Scale::Default => 10_000_000,
            Scale::Full => 50_000_000,
        },
        mice_bytes: 50_000,
        mice_period: Time::from_millis(match scale {
            Scale::Quick => 4,
            _ => 10,
        }),
    };
    let duration = match scale {
        Scale::Quick => Time::from_millis(30),
        Scale::Default => Time::from_millis(150),
        Scale::Full => Time::from_millis(600),
    };

    let schemes = vec![
        Scheme::Ecmp,
        Scheme::Conga,
        Scheme::presto(),
        Scheme::drill_default(),
    ];
    let patterns: Vec<(&str, TrafficPattern)> = vec![
        ("Stride(8)", TrafficPattern::Stride(8)),
        ("Bijection", TrafficPattern::Bijection),
        ("Shuffle", TrafficPattern::Shuffle),
    ];

    let mut base = base_config(topo, schemes[0], 0.0, scale);
    base.synthetic = Some(synth);
    base.duration = duration;
    base.drain = Time::from_millis(1500);
    let hook_patterns: Vec<TrafficPattern> = patterns.iter().map(|(_, p)| p.clone()).collect();
    let res = SweepSpec::new(base)
        .schemes(schemes.clone())
        .variants(patterns.iter().map(|(name, _)| *name).collect())
        .configure(move |cfg, p| cfg.workload.pattern = hook_patterns[p.variant_idx].clone())
        .run()
        .into_stats();

    let mut t = Table::new(["metric (normalized to ECMP)", "CONGA", "Presto", "DRILL"]);
    for (pi, (name, _)) in patterns.iter().enumerate() {
        let base = &res[pi * schemes.len()];
        let base_tput = base.elephant_gbps.mean().max(1e-9);
        let base_mean = base.fct_mice_ms.mean().max(1e-9);
        let mut base_tail = base.fct_mice_ms.clone();
        let base_tail = base_tail.percentile(99.99).max(1e-9);

        let norm = |f: &dyn Fn(&drill_runtime::RunStats) -> f64| -> Vec<String> {
            (1..schemes.len())
                .map(|si| format!("{:.2}", f(&res[pi * schemes.len() + si])))
                .collect()
        };
        let tput = norm(&|s: &drill_runtime::RunStats| s.elephant_gbps.mean() / base_tput);
        let mean = norm(&|s: &drill_runtime::RunStats| s.fct_mice_ms.mean() / base_mean);
        let tail = norm(&|s: &drill_runtime::RunStats| {
            let mut d = s.fct_mice_ms.clone();
            d.percentile(99.99) / base_tail
        });
        t.row([
            format!("{name}: elephant throughput"),
            tput[0].clone(),
            tput[1].clone(),
            tput[2].clone(),
        ]);
        t.row([
            format!("{name}: mice mean FCT"),
            mean[0].clone(),
            mean[1].clone(),
            mean[2].clone(),
        ]);
        t.row([
            format!("{name}: mice 99.99p FCT"),
            tail[0].clone(),
            tail[1].clone(),
            tail[2].clone(),
        ]);
    }
    println!("{}", t.render());
    println!("paper values (throughput higher=better, FCT lower=better):");
    println!("  Stride    tput 1.55/1.71/1.80  meanFCT 0.51/0.41/0.21  tail 0.20/0.15/0.04");
    println!("  Bijection tput 1.46/1.62/1.78  meanFCT 0.71/0.63/0.45  tail 0.22/0.18/0.08");
    println!("  Shuffle   tput 1.00/1.10/1.10  meanFCT 0.95/0.91/0.86  tail 0.86/0.79/0.68");
    println!("expected shape: DRILL best on Stride/Bijection (tput up, mice FCT down);");
    println!("Shuffle is last-hop-bottlenecked, so no scheme helps much.");
}
