//! Figure 7: scale-out — same aggregate core capacity built from more,
//! slower switches (16 spines x 16 leaves, all links 10G). Mean and
//! 99.99th-percentile FCT vs load.

use drill_bench::{banner, base_config, fct_schemes, fct_tables, sweep_grid, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::TopoSpec;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 7: scale-out topology (16 spines x 16 leaves, all 10G)",
        scale,
    );

    let leaves = scale.dim(4, 8, 16);
    let spines = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines,
        leaves,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    println!(
        "topology: {spines} spines x {leaves} leaves x {hosts} hosts, all 10G (paper: 16x16x20)\n"
    );

    let schemes = fct_schemes();
    let loads = scale.loads();
    let base = base_config(topo, schemes[0], loads[0], scale);
    let mut grid = sweep_grid(base, &schemes, &loads);
    let (mean, tail) = fct_tables(&loads, &schemes, &mut grid);
    println!("(a) mean FCT [ms] vs offered core load");
    println!("{mean}");
    println!("(b) 99.99th percentile FCT [ms] vs offered core load");
    println!("{tail}");
    println!("expected shape (paper): every scheme degrades vs Figure 6 (slower links");
    println!("drain queues more slowly), but DRILL degrades most gracefully: at 80%");
    println!("load it cuts mean FCT of ECMP/CONGA by 2.1x/1.6x.");
}
