//! snapbench: what a `DRILLSNAP` checkpoint costs and what warm-started
//! sweeps buy.
//!
//! Two sections, JSON to stdout (`scripts/snapbench.sh` assembles
//! `results/snapbench.json`):
//!
//! * **capture** — on the golden-shaped leaf-spine run, the serialized
//!   snapshot size and the save (capture + encode) and restore (decode +
//!   rebuild) wall latencies, median of several reps, plus a
//!   resume-equality check (the restored run must finish with the
//!   uninterrupted run's event count and FCT digest).
//! * **warm_start** — a variants-sweep timed cold vs warm-started: N
//!   divergent fault timelines forked off one snapshot taken deep into
//!   the shared run prefix, serially on one thread so the ratio measures
//!   amortization, not scheduling. `speedup` is cold/warm wall clock and
//!   `identical` asserts the two sweeps' tables match bit for bit.
//!
//! `--quick` shrinks both sections to CI scale.

use std::time::Instant;

use drill_faults::FaultSchedule;
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::{
    random_leaf_spine_failures, run, ExperimentConfig, Scheme, Snapshot, SweepSpec, TopoSpec, World,
};
use drill_sim::Time;

fn base_cfg(quick: bool) -> ExperimentConfig {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 2,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(topo, Scheme::drill_default(), 0.4);
    cfg.seed = 0xD211;
    cfg.duration = Time::from_millis(if quick { 1 } else { 3 });
    cfg.drain = Time::from_millis(20);
    cfg.warmup = Time::from_micros(100);
    cfg
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Snapshot size and save/restore latency at the midpoint of the run.
fn capture_section(quick: bool) -> String {
    let cfg = base_cfg(quick);
    let snap_at = Time::from_nanos(cfg.duration.as_nanos() / 2);
    let reps = if quick { 3 } else { 7 };

    let mut w = World::new(&cfg);
    w.run_to(snap_at);
    let mut bytes = Vec::new();
    let mut save_ms = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        bytes = w.snapshot().to_bytes();
        save_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    drop(w);
    let mut restore_ms = Vec::new();
    let mut restored = None;
    for _ in 0..reps {
        let t = Instant::now();
        let snap = Snapshot::from_bytes(&bytes).expect("snapbench decode");
        let w = World::restore(&snap, &cfg).expect("snapbench restore");
        restore_ms.push(t.elapsed().as_secs_f64() * 1e3);
        restored = Some(w);
    }
    let resumed = restored.expect("reps > 0").finish();
    let cold = run(&cfg);
    let identical =
        resumed.events == cold.events && resumed.fct_ms.digest() == cold.fct_ms.digest();

    format!(
        "{{\"topo\": \"leafspine_4x4x2\", \"snap_at_us\": {}, \"snapshot_bytes\": {}, \
\"save_ms\": {:.3}, \"restore_ms\": {:.3}, \"resume_identical\": {identical}, \
\"cold_events\": {}, \"resumed_events\": {}}}",
        snap_at.as_nanos() / 1000,
        bytes.len(),
        median(save_ms),
        median(restore_ms),
        cold.events,
        resumed.events,
    )
}

/// Cold vs warm-started sweep over divergent fault timelines.
fn warm_start_section(quick: bool) -> String {
    let base = base_cfg(quick);
    let variants = if quick { 4 } else { 6 };
    // Snapshot deep into the run (5/6 of arrivals + drain): the long
    // shared prefix is what each fork amortizes away. Events are spread
    // near-uniformly over the whole run — the drain tail simulates the
    // still-active heavy flows — so the snapshot instant, not the
    // arrival window, sets the shareable fraction.
    let snap_at = Time::from_nanos((base.duration + base.drain).as_nanos() * 5 / 6);
    let pair = random_leaf_spine_failures(&base.topo.build(), 1, 0xC405)[0];
    let spec = move || {
        let names: Vec<String> = (0..variants)
            .map(|i| {
                if i == 0 {
                    "clear".into()
                } else {
                    format!("flap+{i}")
                }
            })
            .collect();
        SweepSpec::new(base_cfg(quick))
            .variants(names)
            .threads(1)
            .configure(move |cfg, p| {
                if p.variant_idx > 0 {
                    // Divergent timelines, every strike after the
                    // snapshot point — the chaos-fork use case.
                    let down = snap_at + Time::from_micros(20 * p.variant_idx as u64);
                    let mut s = FaultSchedule::new(Time::from_micros(200));
                    s.link_flap(pair.0, pair.1, down, down + Time::from_micros(400));
                    cfg.faults = Some(s);
                }
            })
    };

    let t = Instant::now();
    let cold = spec().run().into_stats();
    let cold_secs = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let warm = spec().warm_start(snap_at).run().into_stats();
    let warm_secs = t.elapsed().as_secs_f64();
    let identical = cold.len() == warm.len()
        && cold
            .iter()
            .zip(&warm)
            .all(|(c, w)| c.events == w.events && c.fct_ms.digest() == w.fct_ms.digest());

    format!(
        "{{\"variants\": {variants}, \"snap_at_us\": {}, \"cold_secs\": {cold_secs:.3}, \
\"warm_secs\": {warm_secs:.3}, \"speedup\": {:.2}, \"identical\": {identical}}}",
        snap_at.as_nanos() / 1000,
        cold_secs / warm_secs,
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("{{");
    println!("  \"bench\": \"snapbench\",");
    println!("  \"mode\": \"{}\",", if quick { "quick" } else { "full" });
    println!("  \"capture\": {},", capture_section(quick));
    println!("  \"warm_start\": {}", warm_start_section(quick));
    println!("}}");
}
