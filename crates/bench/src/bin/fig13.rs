//! Figure 13: heterogeneous topology with imbalanced striping — each leaf
//! has two parallel links to its two "neighbour" spines and one to every
//! other spine. Mean and 99.99th-percentile FCT vs load for Presto, WCMP,
//! CONGA, DRILL w/o shim, DRILL.

use drill_bench::{banner, base_config, fct_tables, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::{run_many, ExperimentConfig, RunStats, Scheme, TopoSpec};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 13: heterogeneous striping (extra parallel links)",
        scale,
    );

    let n = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 48);
    let base = LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    };
    let topo = TopoSpec::HeteroStriped {
        base,
        extra_links: 2,
    };
    println!(
        "topology: {n} leaves x {hosts} hosts, {n} spines; 2 links to spines i and i+1,\n1 link otherwise (paper: 16 leaves x 48 hosts, 16 spines)\n"
    );

    let schemes = vec![
        Scheme::presto(),
        Scheme::Wcmp,
        Scheme::Conga,
        Scheme::drill_no_shim(),
        Scheme::drill_default(),
    ];
    let loads = scale.loads();
    let mut cfgs: Vec<ExperimentConfig> = Vec::new();
    for &load in &loads {
        for &scheme in &schemes {
            cfgs.push(base_config(topo.clone(), scheme, load, scale));
        }
    }
    let flat = run_many(&cfgs);
    let mut grid: Vec<Vec<RunStats>> = Vec::new();
    let mut it = flat.into_iter();
    for _ in &loads {
        grid.push(
            (0..schemes.len())
                .map(|_| it.next().expect("result"))
                .collect(),
        );
    }
    let (mean, tail) = fct_tables(&loads, &schemes, grid);
    println!("(a) mean FCT [ms] vs load");
    println!("{mean}");
    println!("(b) 99.99th percentile FCT [ms] vs load");
    println!("{tail}");
    println!("expected shape (paper): DRILL and CONGA exploit the extra capacity");
    println!("(load-aware) and beat the static-weight schemes Presto and WCMP,");
    println!("especially under heavy load.");
}
