//! Figure 13: heterogeneous topology with imbalanced striping — each leaf
//! has two parallel links to its two "neighbour" spines and one to every
//! other spine. Mean and 99.99th-percentile FCT vs load for Presto, WCMP,
//! CONGA, DRILL w/o shim, DRILL.

use drill_bench::{banner, base_config, fct_tables, sweep_grid, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::{Scheme, TopoSpec};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 13: heterogeneous striping (extra parallel links)",
        scale,
    );

    let n = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 48);
    let base = LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    };
    let topo = TopoSpec::HeteroStriped {
        base,
        extra_links: 2,
    };
    println!(
        "topology: {n} leaves x {hosts} hosts, {n} spines; 2 links to spines i and i+1,\n1 link otherwise (paper: 16 leaves x 48 hosts, 16 spines)\n"
    );

    let schemes = vec![
        Scheme::presto(),
        Scheme::Wcmp,
        Scheme::Conga,
        Scheme::drill_no_shim(),
        Scheme::drill_default(),
    ];
    let loads = scale.loads();
    let base = base_config(topo, schemes[0], loads[0], scale);
    let mut grid = sweep_grid(base, &schemes, &loads);
    let (mean, tail) = fct_tables(&loads, &schemes, &mut grid);
    println!("(a) mean FCT [ms] vs load");
    println!("{mean}");
    println!("(b) 99.99th percentile FCT [ms] vs load");
    println!("{tail}");
    println!("expected shape (paper): DRILL and CONGA exploit the extra capacity");
    println!("(load-aware) and beat the static-weight schemes Presto and WCMP,");
    println!("especially under heavy load.");
}
