//! sweepbench: wall-clock benchmark of the parallel sweep executor.
//!
//! Runs a fig2-style sweep grid (open-loop packet trains, queue sampling
//! on: schemes × loads × engines) on the `DRILL_THREADS` pool and prints:
//!
//! * **stdout** — a deterministic per-point result table: flat index,
//!   axis values, event count, and the raw IEEE-754 bits of the headline
//!   metrics. Two runs at different `DRILL_THREADS` must produce
//!   byte-identical stdout; `scripts/sweepbench.sh` diffs them.
//! * **stderr** — one JSON line `{"bench": "sweepbench", "threads": ...,
//!   "points": ..., "wall_secs": ...}` for the timing harness.
//!
//! `DRILL_SCALE` picks the grid size as usual (quick/default/full).

use std::time::Instant;

use drill_bench::{base_config, Scale};
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::{Scheme, SweepSpec, TopoSpec};

fn main() {
    let scale = Scale::from_env();
    let threads = drill_exec::threads_from_env();

    let n = scale.dim(4, 8, 16);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let schemes = vec![
        Scheme::Ecmp,
        Scheme::Random,
        Scheme::RoundRobin,
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
    ];
    let engines_axis = match scale {
        Scale::Quick => vec![1, 4],
        _ => vec![1, 4, 12],
    };
    let mut base = base_config(topo, schemes[0], 0.8, scale);
    base.raw_packet_mode = true;
    base.queue_limit_bytes = 20_000_000;
    base.workload.burst_sigma = 2.0;
    base.sample_queues = true;
    base.drain = drill_sim::Time::from_millis(5);

    let spec = SweepSpec::new(base)
        .schemes(schemes)
        .loads(vec![0.8, 0.3])
        .engines(engines_axis)
        .reps(2);
    let start = Instant::now();
    let res = spec.run();
    let wall = start.elapsed().as_secs_f64();

    println!("# sweepbench point table (bit-exact; independent of DRILL_THREADS)");
    println!("# idx scheme load engines rep seed events qstdv_mean_bits qstdv_count fct_p50_bits fct_p9999_bits fct_count");
    let mut total_events = 0u64;
    let points: Vec<_> = res.iter().map(|(p, _)| p.clone()).collect();
    let mut stats = res.into_stats();
    for (p, st) in points.iter().zip(stats.iter_mut()) {
        total_events += st.events;
        println!(
            "{} {} {:.2} {} {} {:#018x} {} {:#018x} {} {:#018x} {:#018x} {}",
            p.index,
            p.scheme.name().replace(' ', "_"),
            p.load,
            p.engines,
            p.rep,
            p.seed,
            st.events,
            st.queue_stdv.mean().to_bits(),
            st.queue_stdv.count(),
            st.fct_ms.quantile(0.50).to_bits(),
            st.fct_ms.quantile(0.9999).to_bits(),
            st.fct_ms.count(),
        );
    }

    eprintln!(
        "{{\"bench\": \"sweepbench\", \"threads\": {}, \"points\": {}, \"events\": {}, \"wall_secs\": {:.3}, \"events_per_sec\": {:.0}}}",
        threads,
        stats.len(),
        total_events,
        wall,
        total_events as f64 / wall
    );
}
