//! Figure 14: incast — (a, b) FCT CDFs under 20% and 30% background load
//! with the many-to-one incast application running, (c) where queueing and
//! loss happen per hop at 20% load.
//!
//! Incast model (following the paper / Vasudevan et al.): every epoch, 10%
//! of hosts each simultaneously fetch 10 KB from 10% of the other hosts.

use drill_bench::{banner, base_config, fct_schemes, sweep_grid, Scale};
use drill_net::{HopClass, LeafSpineSpec};
use drill_runtime::TopoSpec;
use drill_sim::Time;
use drill_stats::{f3, Table};
use drill_workload::IncastSpec;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 14: incast", scale);

    let leaves = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    println!("topology: 4 spines x {leaves} leaves x {hosts} hosts, 40G/10G (paper: 4x16x20)");
    println!("incast: each epoch, 10% of hosts fetch 10KB from 10% of hosts\n");

    let schemes = fct_schemes();
    let incast = IncastSpec {
        epoch_gap: Time::from_millis(2),
        ..Default::default()
    };
    let loads = [0.2, 0.3];
    let mut base = base_config(topo, schemes[0], loads[0], scale);
    base.workload.incast = Some(incast);
    let mut grid = sweep_grid(base, &schemes, &loads);

    for (li, &load) in loads.iter().enumerate() {
        let res = &mut grid[li];
        let mut header = vec!["metric".to_string()];
        header.extend(schemes.iter().map(|s| s.name()));
        let mut t = Table::new(header);
        for (label, p) in [
            ("median", 50.0),
            ("p99", 99.0),
            ("p99.9", 99.9),
            ("p99.99", 99.99),
        ] {
            let mut row = vec![format!("incast FCT {label} [ms]")];
            for s in res.iter_mut() {
                row.push(f3(s.fct_incast_ms.percentile(p)));
            }
            t.row(row);
        }
        let mut row = vec!["all-flow FCT mean [ms]".to_string()];
        for s in res.iter_mut() {
            row.push(f3(s.fct_ms.mean()));
        }
        t.row(row);
        println!(
            "({}) {}% background load — incast flow completion times",
            if load < 0.25 { "a" } else { "b" },
            (load * 100.0) as u32
        );
        println!("{}", t.render());
    }

    // (c) queueing and loss per hop at 20% load — row 0 of the grid.
    let keep_for_c = &grid[0];
    let mut t = Table::new([
        "scheme",
        "q hop1 [us]",
        "q hop2 [us]",
        "q hop3 [us]",
        "loss hop1 %",
        "loss hop2 %",
        "loss hop3 %",
    ]);
    for (s, st) in schemes.iter().zip(keep_for_c) {
        t.row([
            s.name(),
            f3(st.hops.mean_wait_us(HopClass::LeafUp)),
            f3(st.hops.mean_wait_us(HopClass::SpineDown)),
            f3(st.hops.mean_wait_us(HopClass::ToHost)),
            f3(st.hops.loss_rate(HopClass::LeafUp) * 100.0),
            f3(st.hops.loss_rate(HopClass::SpineDown) * 100.0),
            f3(st.hops.loss_rate(HopClass::ToHost) * 100.0),
        ]);
    }
    println!("(c) where queueing and loss happen at 20% load");
    println!("{}", t.render());
    println!("expected shape (paper): DRILL cuts the incast tail (2.1x/2.6x lower");
    println!("99.99p than CONGA/Presto at 20% load) by instantly diverting microbursts;");
    println!("it nearly eliminates hop-1 queueing and drops, and reduces hop-2's.");
}
