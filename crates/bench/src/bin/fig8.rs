//! Figure 8: FCT CDFs on the scale-out topology at (a) 30% and (b) 80%
//! load.

use drill_bench::{banner, base_config, cdf_table, fct_schemes, sweep_grid, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::TopoSpec;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 8: FCT CDFs on the scale-out topology", scale);

    let n = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    println!("topology: {n} spines x {n} leaves x {hosts} hosts, all 10G (paper: 16x16x20)\n");

    let schemes = fct_schemes();
    let loads = [0.3, 0.8];
    let base = base_config(topo, schemes[0], loads[0], scale);
    let mut grid = sweep_grid(base, &schemes, &loads);
    for (li, &load) in loads.iter().enumerate() {
        println!(
            "({}) {}% load — FCT [ms] at CDF fractions",
            if load < 0.5 { "a" } else { "b" },
            (load * 100.0) as u32
        );
        println!("{}", cdf_table(&schemes, &mut grid[li], 12));
    }
    println!("expected shape (paper): curves nearly coincide at 30% load; at 80% the");
    println!("DRILL curves rise leftmost (stochastically smallest FCT), ECMP rightmost.");
}
