//! Figure 12: ten random leaf-spine link failures — mean and 99.99th
//! percentile FCT vs load (scale-out topology). Also reproduces the §4
//! note comparing "ideal DRILL" (instant reconvergence) with OSPF-delayed
//! reaction under 5 failures at 70% load.

use drill_bench::{banner, base_config, fct_schemes, fct_tables, sweep_grid, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::{random_leaf_spine_failures, Scheme, SweepSpec, TopoSpec};
use drill_sim::Time;

fn main() {
    let scale = Scale::from_env();
    banner("Figure 12: ten random link failures", scale);

    let n = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    let n_failures = scale.dim(3, 6, 10);
    let failures =
        random_leaf_spine_failures(&topo.build(), n_failures, drill_bench::seed_from_env());
    println!(
        "topology: {n} spines x {n} leaves x {hosts} hosts, all 10G; {} failed links (paper: 10)\n",
        failures.len()
    );

    let schemes = fct_schemes();
    let loads = scale.loads();
    let mut base = base_config(topo.clone(), schemes[0], loads[0], scale);
    base.failed_links = failures.clone();
    let mut grid = sweep_grid(base, &schemes, &loads);
    let (mean, tail) = fct_tables(&loads, &schemes, &mut grid);
    println!("(a) mean FCT [ms] vs load, {} failures", failures.len());
    println!("{mean}");
    println!(
        "(b) 99.99th percentile FCT [ms] vs load, {} failures",
        failures.len()
    );
    println!("{tail}");

    // §4: ideal DRILL vs OSPF-delayed reaction, 5 failures at 70% load.
    let five = random_leaf_spine_failures(
        &topo.build(),
        n_failures.min(5),
        drill_bench::seed_from_env() + 1,
    );
    let mut pair_base = base_config(topo, Scheme::drill_default(), 0.7, scale);
    pair_base.failed_links = five.clone();
    let res = SweepSpec::new(pair_base)
        .variants(vec!["ideal", "ospf-delayed"])
        .configure(|cfg, p| {
            if p.variant == "ospf-delayed" {
                cfg.fail_at = Some(Time::from_millis(1));
                cfg.ospf_delay = Time::from_millis(1);
            }
        })
        .run()
        .into_stats();
    let ideal_med = {
        let mut f = res[0].fct_ms.clone();
        f.percentile(50.0)
    };
    let delayed_med = {
        let mut f = res[1].fct_ms.clone();
        f.percentile(50.0)
    };
    println!(
        "ideal-DRILL vs OSPF-delayed DRILL ({} failures, 70% load):",
        five.len()
    );
    println!("  median FCT ideal   = {ideal_med:.3} ms");
    println!("  median FCT delayed = {delayed_med:.3} ms");
    println!(
        "  ideal improvement  = {:.2}% (paper: < 0.6%)\n",
        (delayed_med / ideal_med - 1.0) * 100.0
    );
    println!("expected shape (paper): DRILL and CONGA tolerate many failures best —");
    println!("CONGA shifts load toward surviving capacity, DRILL breaks asymmetric-path");
    println!("rate dependencies via its symmetric decomposition; Presto's static");
    println!("weights and ECMP degrade most.");
}
