//! qbench: std-only microbenchmark of the simulator event queue.
//!
//! Compares the timing-wheel [`WheelQueue`] against the legacy binary-heap
//! [`HeapQueue`] in-process, with no external benchmark framework (the
//! criterion benches are feature-gated for offline builds; this binary is
//! the default perf entry point).
//!
//! Workloads:
//!
//! * **hold(n)** — the steady-state shape of a simulation: `n` events
//!   resident, each iteration pops the earliest and schedules a
//!   replacement a short random gap ahead (sizes 64 / 4096 / 65536).
//! * **churn** — 1M scheduled events under a mixed push / cancel / pop
//!   interleaving with a heavy-tailed deadline spread that exercises
//!   every wheel level and the far-future overflow.
//! * **hold4096_pay24 / _pay112** — hold(4096) with inert payloads sized
//!   like a handle-based event vs a by-value packet: the micro half of
//!   the `arena_ab` section (the e2e half A/Bs the `fat-events` build).
//!
//! Methodology: one warmup run, then the median of nine timed runs per
//! (workload, queue) cell. Output is a JSON document on stdout; see
//! `scripts/qbench.sh` for the full A/B harness that also times an
//! end-to-end fig2-style run under both queue builds and assembles
//! `results/qbench.json`.
//!
//! `--e2e` instead runs one fig2-shaped experiment (open-loop packet
//! trains, queue sampling on) against whichever `EventQueue` this binary
//! was compiled with (`--features heap-queue` selects the heap) and prints
//! a single JSON object with the wall-clock time. `--e2e-telemetry` runs
//! the identical experiment with the `drill-telemetry` flight recorder +
//! queue sampler attached, for the probe-overhead A/B in
//! `scripts/qbench.sh` (the event count must match `--e2e` exactly:
//! probes observe, never steer). `--e2e-audit` runs it with the
//! `drill-audit` invariant watchdogs evaluated at event-count boundaries,
//! for the auditor-overhead A/B (same contract: audits observe, never
//! steer, so the event count must again match `--e2e` exactly).
//!
//! `--control` is the §3.4 control-plane A/B: on mid-size fabrics with
//! failed uplinks it times eager enumeration vs a cold structural install
//! vs a warm (memoized) reinstall, asserting identical group tables
//! first. `scripts/qbench.sh` lands it in `results/qbench.json` under
//! `control_ab`.

use std::hint::black_box;
use std::time::Instant;

use drill_core::{install_symmetric_groups_eager, SymmetryEngine};
use drill_net::{ClosSpec, LeafSpineSpec, PortGroup, RouteTable, SwitchId, Topology, DEFAULT_PROP};
use drill_runtime::{
    random_leaf_spine_failures, run, AuditSpec, ExperimentConfig, Scheme, TelemetrySpec, TopoSpec,
};
use drill_sim::{EventToken, HeapQueue, SimRng, Time, WheelQueue};

/// The common surface of the two queue implementations.
trait EventQ {
    const NAME: &'static str;
    fn make() -> Self;
    fn push(&mut self, at: Time, p: u64);
    fn push_cancellable(&mut self, at: Time, p: u64) -> EventToken;
    fn cancel(&mut self, tok: EventToken);
    fn pop(&mut self) -> Option<(Time, u64)>;
    fn now(&self) -> Time;
}

macro_rules! impl_eventq {
    ($ty:ident, $name:literal) => {
        impl EventQ for $ty<u64> {
            const NAME: &'static str = $name;
            fn make() -> Self {
                $ty::new()
            }
            fn push(&mut self, at: Time, p: u64) {
                $ty::push(self, at, p)
            }
            fn push_cancellable(&mut self, at: Time, p: u64) -> EventToken {
                $ty::push_cancellable(self, at, p)
            }
            fn cancel(&mut self, tok: EventToken) {
                $ty::cancel(self, tok)
            }
            fn pop(&mut self) -> Option<(Time, u64)> {
                $ty::pop(self)
            }
            fn now(&self) -> Time {
                $ty::now(self)
            }
        }
    };
}

impl_eventq!(WheelQueue, "wheel");
impl_eventq!(HeapQueue, "heap");

/// hold(n): pop-one/push-one at steady state. Returns (ops, seconds)
/// where one op is a pop + a push.
fn hold<Q: EventQ>(n: usize, iters: usize) -> (u64, f64) {
    let mut q = Q::make();
    let mut rng = SimRng::seed_from(42);
    for i in 0..n {
        q.push(Time::from_nanos(1 + rng.below(10_000) as u64), i as u64);
    }
    let start = Instant::now();
    for _ in 0..iters {
        let (t, p) = q.pop().expect("queue holds n events");
        black_box(p);
        // Mostly short gaps (packet service times), occasional long ones
        // (timers), as in a real run.
        let gap = if rng.below(16) == 0 {
            rng.below(1 << 22)
        } else {
            rng.below(4096)
        };
        q.push(t + Time::from_nanos(1 + gap as u64), p);
    }
    (iters as u64, start.elapsed().as_secs_f64())
}

/// churn: `events` pushes against a large resident population (the shape
/// of a packed simulation: one RTO timer per flow plus packet events),
/// with cancel traffic both before *and after* events fire — the
/// cancel-after-fire case is the TCP pattern that grew the old heap's
/// cancelled set without bound. Returns (schedule+fire ops, seconds).
fn churn<Q: EventQ>(events: usize) -> (u64, f64) {
    const RESIDENT: usize = 65_536;
    let mut q = Q::make();
    let mut rng = SimRng::seed_from(7);
    let mut tokens: Vec<EventToken> = Vec::new();
    let mut pushed = 0u64;
    let mut fired = 0u64;
    let start = Instant::now();
    for i in 0..RESIDENT {
        q.push(Time::from_nanos(1 + rng.below(1 << 22) as u64), i as u64);
        pushed += 1;
    }
    while (pushed as usize) < events {
        // Packet service times and RTT-scale timers dominate; millisecond
        // and second-scale (RTO max, reconvergence) deadlines are the tail.
        let gap = match rng.below(16) {
            0..=11 => rng.below(1 << 14) as u64,
            12..=13 => rng.below(1 << 22) as u64,
            14 => rng.below(1 << 30) as u64,
            _ => (1u64 << 36) + rng.below(1 << 30) as u64,
        };
        let at = q.now() + Time::from_nanos(1 + gap);
        // TCP re-arms its RTO on every ACK: half the pushes are timers,
        // and cancels run at comparable rate.
        if rng.below(2) == 0 {
            tokens.push(q.push_cancellable(at, pushed));
        } else {
            q.push(at, pushed);
        }
        pushed += 1;
        if let Some((_, p)) = q.pop() {
            black_box(p);
            fired += 1;
        }
        // Cancel an outstanding token; roughly half have already fired,
        // so both cancel paths (pending and post-delivery) stay hot.
        if rng.below(2) == 0 && !tokens.is_empty() {
            let i = rng.below(tokens.len());
            q.cancel(tokens.swap_remove(i));
        }
    }
    while let Some((_, p)) = q.pop() {
        black_box(p);
        fired += 1;
    }
    (pushed + fired, start.elapsed().as_secs_f64())
}

/// hold(4096) with an `S`-byte inert payload: isolates the cost of event
/// *size* in the queue (slab node copies, batch sorts) from everything
/// else. 24 bytes matches the handle-based `Event`, 112 a by-value
/// `Packet` — the micro half of the `arena_ab` section.
fn hold_payload<const S: usize>(iters: usize) -> (u64, f64) {
    #[derive(Clone)]
    struct Pay<const S: usize>([u8; S]);
    const N: usize = 4096;
    let mut q: WheelQueue<Pay<S>> = WheelQueue::new();
    let mut rng = SimRng::seed_from(42);
    for i in 0..N {
        q.push(
            Time::from_nanos(1 + rng.below(10_000) as u64),
            Pay([i as u8; S]),
        );
    }
    let start = Instant::now();
    for _ in 0..iters {
        let (t, p) = q.pop().expect("queue holds n events");
        let gap = if rng.below(16) == 0 {
            rng.below(1 << 22)
        } else {
            rng.below(4096)
        };
        q.push(t + Time::from_nanos(1 + gap as u64), black_box(p));
    }
    (iters as u64, start.elapsed().as_secs_f64())
}

/// One warmup, then the median of `runs` timed executions.
fn median_of<F: FnMut() -> (u64, f64)>(mut f: F, runs: usize) -> (u64, f64) {
    f(); // warmup
    let mut timed: Vec<(u64, f64)> = (0..runs).map(|_| f()).collect();
    timed.sort_by(|a, b| a.1.total_cmp(&b.1));
    timed[runs / 2]
}

struct Cell {
    workload: String,
    queue: &'static str,
    ops: u64,
    secs: f64,
}

impl Cell {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

fn bench_pair<W: EventQ, H: EventQ>(
    workload: &str,
    runs: usize,
    mut f: impl FnMut(bool) -> (u64, f64),
    out: &mut Vec<Cell>,
) {
    let (ops, secs) = median_of(|| f(false), runs);
    out.push(Cell {
        workload: workload.into(),
        queue: W::NAME,
        ops,
        secs,
    });
    let (ops, secs) = median_of(|| f(true), runs);
    out.push(Cell {
        workload: workload.into(),
        queue: H::NAME,
        ops,
        secs,
    });
}

fn micro() {
    const RUNS: usize = 9;
    let mut cells: Vec<Cell> = Vec::new();
    for &n in &[64usize, 4096, 65536] {
        let iters = 2_000_000;
        bench_pair::<WheelQueue<u64>, HeapQueue<u64>>(
            &format!("hold{n}"),
            RUNS,
            |heap| {
                if heap {
                    hold::<HeapQueue<u64>>(n, iters)
                } else {
                    hold::<WheelQueue<u64>>(n, iters)
                }
            },
            &mut cells,
        );
    }
    bench_pair::<WheelQueue<u64>, HeapQueue<u64>>(
        "churn1M",
        RUNS,
        |heap| {
            if heap {
                churn::<HeapQueue<u64>>(1_000_000)
            } else {
                churn::<WheelQueue<u64>>(1_000_000)
            }
        },
        &mut cells,
    );
    // Event-size micro for the arena A/B: same wheel, same workload, the
    // payload alone grows from handle-sized to packet-sized.
    let iters = 2_000_000;
    let (ops, secs) = median_of(|| hold_payload::<24>(iters), RUNS);
    cells.push(Cell {
        workload: "hold4096_pay24".into(),
        queue: "wheel",
        ops,
        secs,
    });
    let (ops, secs) = median_of(|| hold_payload::<112>(iters), RUNS);
    cells.push(Cell {
        workload: "hold4096_pay112".into(),
        queue: "wheel",
        ops,
        secs,
    });

    println!("{{");
    println!("  \"bench\": \"qbench\",");
    println!("  \"runs_per_cell\": 9,");
    println!("  \"results\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        println!(
            "    {{\"workload\": \"{}\", \"queue\": \"{}\", \"ops\": {}, \"secs\": {:.6}, \"mops_per_sec\": {:.3}}}{comma}",
            c.workload,
            c.queue,
            c.ops,
            c.secs,
            c.ops_per_sec() / 1e6
        );
    }
    println!("  ],");
    println!("  \"speedup_wheel_over_heap\": {{");
    // Only workloads benched on both queues enter the speedup table (the
    // payload-size cells are wheel-only).
    let workloads: Vec<String> = {
        let mut w: Vec<String> = cells.iter().map(|c| c.workload.clone()).collect();
        w.dedup();
        w.retain(|w| cells.iter().any(|c| &c.workload == w && c.queue == "heap"));
        w
    };
    for (i, w) in workloads.iter().enumerate() {
        let wheel = cells
            .iter()
            .find(|c| &c.workload == w && c.queue == "wheel")
            .unwrap();
        let heap = cells
            .iter()
            .find(|c| &c.workload == w && c.queue == "heap")
            .unwrap();
        let comma = if i + 1 < workloads.len() { "," } else { "" };
        println!(
            "    \"{w}\": {:.3}{comma}",
            wheel.ops_per_sec() / heap.ops_per_sec()
        );
    }
    println!("  }}");
    println!("}}");
}

/// `--control`: the §3.4 control-plane A/B. On mid-size fabrics with two
/// failed uplinks (so the decomposition has real asymmetric work), time a
/// full route-compute + group install three ways:
///
/// * **eager** — `install_symmetric_groups_eager`, the legacy per-pair
///   path enumeration;
/// * **structural_cold** — a fresh [`SymmetryEngine`] per run (the cost a
///   process pays on its first install);
/// * **structural_warm** — one engine reused across runs (the
///   reconvergence cost: interners, canon memo and decomposition
///   templates all hit).
///
/// Each cell is the median of five runs after a warmup, and the harness
/// first asserts the eager and structural group tables are identical —
/// the speedup is only meaningful against bit-equal output.
fn control() {
    const RUNS: usize = 5;
    const FAILURES: usize = 2;
    struct Fabric {
        name: &'static str,
        spec: fn() -> TopoSpec,
    }
    let fabrics = [
        Fabric {
            name: "leafspine24",
            spec: || {
                TopoSpec::LeafSpine(LeafSpineSpec {
                    spines: 24,
                    leaves: 24,
                    hosts_per_leaf: 4,
                    host_rate: 10_000_000_000,
                    core_rate: 40_000_000_000,
                    prop: DEFAULT_PROP,
                })
            },
        },
        Fabric {
            name: "fattree8",
            spec: || TopoSpec::FatTree {
                k: 8,
                rate: 10_000_000_000,
            },
        },
        Fabric {
            name: "clos512",
            spec: || {
                TopoSpec::Clos(ClosSpec {
                    pods: 8,
                    leaves_per_pod: 4,
                    aggs_per_pod: 4,
                    cores: 8,
                    hosts_per_leaf: 16,
                    host_rate: 10_000_000_000,
                    leaf_agg_rate: 40_000_000_000,
                    agg_core_rate: 40_000_000_000,
                    prop: DEFAULT_PROP,
                })
            },
        },
    ];

    fn table(topo: &Topology, routes: &RouteTable) -> Vec<(u32, u32, Vec<PortGroup>)> {
        let mut out = Vec::new();
        for si in 0..topo.num_switches() as u32 {
            for d in 0..topo.num_leaves() as u32 {
                let g = routes.groups(SwitchId(si), d);
                if !g.is_empty() {
                    out.push((si, d, g.to_vec()));
                }
            }
        }
        out
    }

    println!("{{");
    println!("  \"bench\": \"control_ab\",");
    println!("  \"runs_per_cell\": {RUNS},");
    println!("  \"failures\": {FAILURES},");
    println!("  \"fabrics\": [");
    for (i, f) in fabrics.iter().enumerate() {
        let mut topo = (f.spec)().build();
        for &(a, b) in &random_leaf_spine_failures(&topo, FAILURES, 0xC7A1) {
            let ok = topo.fail_switch_link(SwitchId(a), SwitchId(b), 0)
                || topo.fail_switch_link(SwitchId(b), SwitchId(a), 0);
            assert!(ok, "{}: pair ({a},{b}) matches no live link", f.name);
        }
        // Correctness gate: identical group tables, then keep the warmed
        // engine for the reconvergence cells.
        let mut eager_routes = RouteTable::compute(&topo);
        let eager_report = install_symmetric_groups_eager(&topo, &mut eager_routes);
        let mut warm = SymmetryEngine::new();
        let mut structural_routes = RouteTable::compute(&topo);
        let report = warm.install(&topo, &mut structural_routes);
        assert_eq!(
            table(&topo, &eager_routes),
            table(&topo, &structural_routes),
            "{}: structural and eager group tables must be identical",
            f.name
        );
        let timed = |body: &mut dyn FnMut()| -> f64 {
            median_of(
                || {
                    let start = Instant::now();
                    body();
                    (1, start.elapsed().as_secs_f64())
                },
                RUNS,
            )
            .1
        };
        let eager_secs = timed(&mut || {
            let mut r = RouteTable::compute(&topo);
            black_box(install_symmetric_groups_eager(&topo, &mut r));
        });
        let cold_secs = timed(&mut || {
            let mut r = RouteTable::compute(&topo);
            black_box(SymmetryEngine::new().install(&topo, &mut r));
        });
        let warm_secs = timed(&mut || {
            let mut r = RouteTable::compute(&topo);
            black_box(warm.install(&topo, &mut r));
        });
        let comma = if i + 1 < fabrics.len() { "," } else { "" };
        println!(
            "    {{\"fabric\": \"{}\", \"entries\": {}, \"classes\": {}, \"entries_reused\": {}, \
\"paths_structural\": {}, \"paths_eager\": {}, \"eager_secs\": {:.6}, \
\"structural_cold_secs\": {:.6}, \"structural_warm_secs\": {:.6}, \
\"speedup_cold\": {:.3}, \"speedup_warm\": {:.3}}}{comma}",
            f.name,
            report.entries,
            report.classes,
            report.entries_reused,
            report.paths_enumerated,
            eager_report.paths_enumerated,
            eager_secs,
            cold_secs,
            warm_secs,
            eager_secs / cold_secs,
            eager_secs / warm_secs,
        );
    }
    println!("  ]");
    println!("}}");
}

/// Which observation layer rides along on the e2e run. Every variant is
/// the identical simulation — the A/B harness asserts equal event counts.
#[derive(Clone, Copy, PartialEq, Eq)]
enum E2eMode {
    /// NoopProbe + NoopAudit: the plain build.
    Plain,
    /// Flight recorder + queue sampler attached.
    Telemetry,
    /// Invariant watchdogs evaluated at event-count boundaries.
    Audit,
}

/// One fig2-shaped run (open-loop packet trains, queue sampling) against
/// the compiled-in `EventQueue`. With [`E2eMode::Telemetry`] the flight
/// recorder + queue sampler ride along; with [`E2eMode::Audit`] the
/// invariant auditor does (same simulation, extra observation).
fn e2e(mode: E2eMode) {
    let queue = if cfg!(feature = "heap-queue") {
        "heap"
    } else {
        "wheel"
    };
    let layout = if cfg!(feature = "fat-events") {
        "fat"
    } else {
        "arena"
    };
    let n = 20;
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let mut cfg = ExperimentConfig::new(
        topo,
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
        0.8,
    );
    cfg.duration = Time::from_millis(4);
    cfg.raw_packet_mode = true;
    cfg.queue_limit_bytes = 20_000_000;
    cfg.workload.burst_sigma = 2.0;
    cfg.sample_queues = true;
    cfg.drain = Time::from_millis(5);
    cfg.engines = 4;
    let workload = match mode {
        E2eMode::Plain => "e2e_fig2",
        E2eMode::Telemetry => {
            cfg.telemetry = Some(TelemetrySpec::default());
            "e2e_fig2_telemetry"
        }
        E2eMode::Audit => {
            cfg.audit = Some(AuditSpec::default());
            "e2e_fig2_audit"
        }
    };
    // The run resolves its shard count from DRILL_SHARDS (cfg.shards stays
    // None here); record the same resolution so the shard_ab harness can
    // label each line. Note the auto partitioner may clamp below this.
    let shards = drill_exec::shards_from_env().unwrap_or(1);
    let start = Instant::now();
    let stats = run(&cfg);
    let wall = start.elapsed().as_secs_f64();
    println!(
        "{{\"workload\": \"{workload}\", \"queue\": \"{queue}\", \"layout\": \"{layout}\", \"shards\": {shards}, \"wall_secs\": {:.3}, \"events\": {}, \"events_per_sec\": {:.0}, \"shard_handoffs\": {}, \"shard_windows\": {}}}",
        wall,
        stats.events,
        stats.events as f64 / wall,
        stats.shard_handoffs,
        stats.shard_windows
    );
}

fn main() {
    if std::env::args().any(|a| a == "--control") {
        control();
    } else if std::env::args().any(|a| a == "--e2e-telemetry") {
        e2e(E2eMode::Telemetry);
    } else if std::env::args().any(|a| a == "--e2e-audit") {
        e2e(E2eMode::Audit);
    } else if std::env::args().any(|a| a == "--e2e") {
        e2e(E2eMode::Plain);
    } else {
        micro();
    }
}
