//! scalebench: how the simulator scales with fabric size.
//!
//! Runs a ladder of topologies from the paper's 320-host leaf-spine up to
//! a 16k-host oversubscribed k=32 fat-tree (plus a build-only k=64 point,
//! 65k hosts) and records, per point:
//!
//! * **events/sec** — wall-clock event throughput of the run. The wall
//!   includes the `World`'s own route-compute + structural group install
//!   (asymmetry handling is on at every point); the separately reported
//!   `cp_install_secs` prices that one-time cost, so subtracting it
//!   recovers the simulation-only throughput;
//! * **bytes/host** — payload bytes delivered per host (work actually
//!   simulated, so throughput numbers are comparable across sizes);
//! * **fct_retained** — samples held by the FCT distribution, which stays
//!   O(k log n) once the store spills into the quantile sketch;
//! * **peak RSS** — `VmHWM` from `/proc/self/status` (kB; 0 off-Linux).
//!
//! Ladder points run open-loop packet trains (`raw_packet_mode`) with the
//! arrival window shrunk as the fabric grows, keeping every point within
//! a few million events. RSS is a process-wide high-water mark, so
//! `scripts/scalebench.sh` runs each point in a fresh process
//! (`--point NAME`) and assembles `results/scalebench.json`; invoking the
//! binary with no arguments runs the ladder in-process (ascending size,
//! so the per-point attribution stays honest) and prints a JSON array.
//!
//! `--quick` swaps in a seconds-scale ladder for CI smoke.
//!
//! Crash recovery: `--checkpoint-every N` makes the traffic run write a
//! `DRILLSNAP` checkpoint (`--checkpoint-path`, default
//! `scalebench.ckpt`) every N events; `--die-after M` aborts the process
//! after M events without reporting (a deterministic stand-in for a
//! kill); `--resume PATH` restores the checkpoint in a fresh process and
//! runs it to completion, reporting the same JSON — `scripts/ci.sh`
//! smokes kill → resume and asserts the resumed totals match an
//! uninterrupted run.

use std::path::PathBuf;
use std::time::Instant;

use drill_core::SymmetryEngine;
use drill_net::{ClosSpec, LeafSpineSpec, RouteTable, SwitchId, DEFAULT_PROP};
use drill_runtime::{
    random_leaf_spine_failures, run, CheckpointPolicy, CheckpointSpec, ExperimentConfig, Scheme,
    Snapshot, TopoSpec, World,
};
use drill_sim::Time;

/// One ladder entry: a named topology plus the arrival window that keeps
/// its event count in the millions, or a build-only probe of topology +
/// routing construction.
struct Point {
    name: &'static str,
    topo: fn() -> TopoSpec,
    /// Arrival window in microseconds; 0 = build-only (no traffic).
    window_us: u64,
    /// Leaf-uplinks to fail before the run (deterministic picks). The
    /// `*_asym*f` points use this to put the §3.4 control plane under
    /// genuine asymmetry at scale; the probe then fails one *more* link
    /// to time a warm reconvergence.
    failures: usize,
}

fn leafspine320() -> TopoSpec {
    TopoSpec::LeafSpine(LeafSpineSpec::paper_baseline())
}

fn clos512() -> TopoSpec {
    TopoSpec::Clos(ClosSpec {
        pods: 8,
        leaves_per_pod: 4,
        aggs_per_pod: 4,
        cores: 8,
        hosts_per_leaf: 16,
        host_rate: 10_000_000_000,
        leaf_agg_rate: 40_000_000_000,
        agg_core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    })
}

fn clos_smoke() -> TopoSpec {
    TopoSpec::Clos(ClosSpec::smoke())
}

fn ft(k: usize) -> TopoSpec {
    TopoSpec::FatTree {
        k,
        rate: 10_000_000_000,
    }
}

/// k=32 with a 2:1 oversubscribed edge: 512 edge switches x 32 hosts =
/// 16384 hosts, the acceptance-scale point.
fn ft32x2() -> TopoSpec {
    TopoSpec::FatTreeCustom {
        k: 32,
        hosts_per_edge: 32,
        rate: 10_000_000_000,
    }
}

/// 16384-host three-tier Clos with 8 core planes, the large asymmetric
/// ladder point (failed uplinks make the striping genuinely uneven).
fn clos16k() -> TopoSpec {
    TopoSpec::Clos(ClosSpec {
        pods: 16,
        leaves_per_pod: 16,
        aggs_per_pod: 8,
        cores: 64,
        hosts_per_leaf: 64,
        host_rate: 10_000_000_000,
        leaf_agg_rate: 40_000_000_000,
        agg_core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    })
}

const FULL: &[Point] = &[
    Point {
        name: "leafspine_320h",
        topo: leafspine320,
        window_us: 2000,
        failures: 0,
    },
    Point {
        name: "clos_512h",
        topo: clos512,
        window_us: 1000,
        failures: 0,
    },
    Point {
        name: "fattree16_1024h",
        topo: || ft(16),
        window_us: 600,
        failures: 0,
    },
    Point {
        name: "fattree32_8192h",
        topo: || ft(32),
        window_us: 250,
        failures: 0,
    },
    Point {
        name: "fattree32x2_16384h",
        topo: ft32x2,
        window_us: 200,
        failures: 0,
    },
    // Asymmetric ladder: the same acceptance-scale fabrics with failed
    // uplinks, so the structural §3.4 control plane has real work (the
    // eager enumeration needed ~9 GB and minutes at k=32; the class
    // decomposition must stay well under 1 GB).
    Point {
        name: "fattree32_8192h_asym4f",
        topo: || ft(32),
        window_us: 250,
        failures: 4,
    },
    Point {
        name: "fattree32x2_16384h_asym4f",
        topo: ft32x2,
        window_us: 200,
        failures: 4,
    },
    Point {
        name: "clos16k_asym4f",
        topo: clos16k,
        window_us: 150,
        failures: 4,
    },
    Point {
        name: "fattree64_65536h_build",
        topo: || ft(64),
        window_us: 0,
        failures: 0,
    },
];

const QUICK: &[Point] = &[
    Point {
        name: "leafspine_320h",
        topo: leafspine320,
        window_us: 300,
        failures: 0,
    },
    Point {
        name: "clos_smoke_32h",
        topo: clos_smoke,
        window_us: 300,
        failures: 0,
    },
    Point {
        name: "fattree8_128h",
        topo: || ft(8),
        window_us: 300,
        failures: 0,
    },
    // CI smoke for the asymmetric control plane: small fat-tree, two
    // failed uplinks, full probe + traffic in well under a second.
    Point {
        name: "fattree8_128h_asym2f",
        topo: || ft(8),
        window_us: 300,
        failures: 2,
    },
];

/// Peak resident set (`VmHWM`) in kB; 0 when `/proc` is unavailable.
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|l| l.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Crash-recovery knobs (see the module docs).
#[derive(Default)]
struct RecoveryOpts {
    checkpoint_every: Option<u64>,
    checkpoint_path: PathBuf,
    die_after: Option<u64>,
    resume: Option<PathBuf>,
}

fn point_cfg(p: &Point, failed: &[(u32, u32)]) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(
        (p.topo)(),
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
        0.25,
    );
    // The structural §3.4 control plane decomposes one symmetry-class
    // representative per distinct routing neighbourhood instead of
    // enumerating every leaf-pair shortest path, so it is affordable at
    // every ladder point (the old eager enumeration was O(leaves^2 *
    // paths) — gigabytes and minutes at k=32, and scalebench used to
    // disable it). Leave it on: the ladder now measures control-plane
    // scaling too, and the `*_asym*f` points rely on it.
    cfg.asymmetry_handling = true;
    cfg.failed_links = failed.to_vec();
    cfg.raw_packet_mode = true;
    cfg.duration = Time::from_micros(p.window_us);
    cfg.drain = Time::from_millis(5);
    cfg.warmup = Time::ZERO;
    cfg
}

/// Fail the switch-to-switch link `(a, b)`, direction-agnostic.
fn fail_pair(topo: &mut drill_net::Topology, a: u32, b: u32) {
    let ok = topo.fail_switch_link(SwitchId(a), SwitchId(b), 0)
        || topo.fail_switch_link(SwitchId(b), SwitchId(a), 0);
    assert!(ok, "pair ({a},{b}) matches no live switch-to-switch link");
}

fn run_point(p: &Point, rec: &RecoveryOpts) -> String {
    let spec = (p.topo)();
    let build_start = Instant::now();
    let mut topo = spec.build();
    let routes = RouteTable::compute(&topo);
    let build_secs = build_start.elapsed().as_secs_f64();
    let hosts = topo.num_hosts();
    let switches = topo.num_switches();
    let link_entries = topo.links().len();
    drop(routes);

    // Control-plane probe: time a cold structural §3.4 install on the
    // point's fabric (with its failure set applied), then — when the
    // point has failures — fail one *extra* uplink and time the warm
    // reconvergence (routes + incremental reinstall on the same engine).
    let pairs = if p.failures > 0 {
        let picked = random_leaf_spine_failures(&topo, p.failures + 1, 0xA5F);
        assert_eq!(
            picked.len(),
            p.failures + 1,
            "{}: fabric has too few leaf uplinks to fail",
            p.name
        );
        picked
    } else {
        Vec::new()
    };
    for &(a, b) in pairs.iter().take(p.failures) {
        fail_pair(&mut topo, a, b);
    }
    let cp_start = Instant::now();
    let mut cp_routes = RouteTable::compute(&topo);
    let mut engine = SymmetryEngine::new();
    let report = engine.install(&topo, &mut cp_routes);
    let cp_install_secs = cp_start.elapsed().as_secs_f64();
    let cp_reconverge_secs = if let Some(&(a, b)) = pairs.get(p.failures) {
        fail_pair(&mut topo, a, b);
        let t = Instant::now();
        let mut reconv_routes = RouteTable::compute(&topo);
        engine.install(&topo, &mut reconv_routes);
        t.elapsed().as_secs_f64()
    } else {
        0.0
    };
    drop(engine);
    drop(cp_routes);
    drop(topo);

    let (wall, events, flows, bytes, fct_retained, fct_exact) = if p.window_us == 0 {
        // Build-only probe: topology + routing construction at a scale
        // (65k hosts) where a traffic run would be CI-hostile.
        (0.0, 0, 0, 0, 0, true)
    } else {
        let mut cfg = point_cfg(p, &pairs[..p.failures]);
        let start = Instant::now();
        let stats = if let Some(path) = &rec.resume {
            let snap =
                Snapshot::load(path).unwrap_or_else(|e| panic!("resume {}: {e}", path.display()));
            World::restore(&snap, &cfg)
                .unwrap_or_else(|e| panic!("resume {}: {e}", path.display()))
                .finish()
        } else {
            if let Some(n) = rec.checkpoint_every {
                cfg.checkpoint = Some(CheckpointSpec {
                    policy: CheckpointPolicy::EveryEvents(n),
                    path: rec.checkpoint_path.clone(),
                });
            }
            if let Some(n) = rec.die_after {
                cfg.max_events = n;
            }
            run(&cfg)
        };
        if let Some(n) = rec.die_after {
            // Simulated kill: the run stopped mid-flight after ~n events;
            // exit without reporting, leaving only the checkpoint file.
            eprintln!(
                "scalebench: dying after {} events (--die-after {n})",
                stats.events
            );
            std::process::exit(42);
        }
        (
            start.elapsed().as_secs_f64(),
            stats.events,
            stats.flows_started,
            stats.bytes_delivered,
            stats.fct_ms.retained(),
            stats.fct_ms.is_exact(),
        )
    };
    let eps = if wall > 0.0 {
        events as f64 / wall
    } else {
        0.0
    };
    format!(
        "{{\"point\": \"{}\", \"hosts\": {hosts}, \"switches\": {switches}, \"link_entries\": {link_entries}, \
\"build_secs\": {build_secs:.3}, \"window_us\": {}, \"failures\": {}, \
\"cp_install_secs\": {cp_install_secs:.4}, \"cp_reconverge_secs\": {cp_reconverge_secs:.4}, \
\"cp_entries\": {}, \"cp_classes\": {}, \"cp_entries_reused\": {}, \"cp_paths\": {}, \
\"asym_entries\": {}, \"wall_secs\": {wall:.3}, \"events\": {events}, \
\"events_per_sec\": {eps:.0}, \"flows_started\": {flows}, \"bytes_delivered\": {bytes}, \
\"bytes_per_host\": {:.1}, \"fct_retained\": {fct_retained}, \"fct_exact\": {fct_exact}, \
\"peak_rss_kb\": {}}}",
        p.name,
        p.window_us,
        p.failures,
        report.entries,
        report.classes,
        report.entries_reused,
        report.paths_enumerated,
        report.asymmetric_entries,
        bytes as f64 / hosts as f64,
        peak_rss_kb()
    )
}

/// Sketch-scaling section: feed n heavy-tailed samples into a forced-sketch
/// [`drill_stats::Distribution`] and report retained memory plus the
/// measured rank error of p50/p90/p99 against the exact order statistics —
/// the "peak memory sublinear in flow count" evidence at sample counts the
/// exact store could not hold per-run.
fn sketch_ladder(quick: bool) {
    use drill_stats::Distribution;
    let ns: &[usize] = if quick {
        &[100_000, 1_000_000]
    } else {
        &[100_000, 1_000_000, 10_000_000]
    };
    println!("[");
    for (i, &n) in ns.iter().enumerate() {
        let mut rng = drill_sim::SimRng::seed_from(0x5CA1E);
        let mut sk = Distribution::sketched();
        let mut exact: Vec<f64> = Vec::with_capacity(n);
        for _ in 0..n {
            // Pareto-ish heavy tail, the shape of FCT distributions.
            let u = (rng.below(u32::MAX as usize) as f64 + 1.0) / (u32::MAX as f64 + 1.0);
            let x = 1.0 / u.powf(0.5);
            sk.add(x);
            exact.push(x);
        }
        exact.sort_unstable_by(|a, b| a.total_cmp(b));
        let rank_err = |q: f64, est: f64| -> f64 {
            let r = exact.partition_point(|&v| v <= est);
            (r as f64 / n as f64 - q).abs()
        };
        let (p50, p90, p99) = (sk.quantile(0.5), sk.quantile(0.9), sk.quantile(0.99));
        let comma = if i + 1 < ns.len() { "," } else { "" };
        println!(
            "  {{\"samples\": {n}, \"retained\": {}, \"eps_bound\": {:.5}, \
\"p50_rank_err\": {:.5}, \"p90_rank_err\": {:.5}, \"p99_rank_err\": {:.5}}}{comma}",
            sk.retained(),
            sk.rank_error_bound().expect("sketch mode"),
            rank_err(0.5, p50),
            rank_err(0.9, p90),
            rank_err(0.99, p99),
        );
    }
    println!("]");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    if args.iter().any(|a| a == "--sketch") {
        sketch_ladder(quick);
        return;
    }
    let flag_val = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1)
                .unwrap_or_else(|| panic!("{flag} VALUE"))
                .clone()
        })
    };
    let rec = RecoveryOpts {
        checkpoint_every: flag_val("--checkpoint-every")
            .map(|v| v.parse().expect("--checkpoint-every EVENTS")),
        checkpoint_path: flag_val("--checkpoint-path")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("scalebench.ckpt")),
        die_after: flag_val("--die-after").map(|v| v.parse().expect("--die-after EVENTS")),
        resume: flag_val("--resume").map(PathBuf::from),
    };
    let ladder = if quick { QUICK } else { FULL };
    if args.iter().any(|a| a == "--list") {
        for p in ladder {
            println!("{}", p.name);
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--point") {
        let name = args.get(i + 1).expect("--point NAME");
        // The active ladder wins when a name appears in both (the quick
        // ladder reuses full-ladder names with smaller arrival windows).
        let other = if quick { FULL } else { QUICK };
        let p = ladder
            .iter()
            .chain(other.iter())
            .find(|p| p.name == *name)
            .unwrap_or_else(|| panic!("unknown point {name}"));
        println!("{}", run_point(p, &rec));
        return;
    }
    // In-process ladder, ascending size so the RSS high-water mark per
    // point remains attributable.
    println!("[");
    for (i, p) in ladder.iter().enumerate() {
        let comma = if i + 1 < ladder.len() { "," } else { "" };
        println!("  {}{comma}", run_point(p, &rec));
    }
    println!("]");
}
