//! Figure 3: the synchronization effect — too many samples (d) or memory
//! units (m) degrade DRILL on many-engine switches under load (§3.2.3).
//!
//! Setup: 48-engine switches, 80% load, queue-length STDV metric. Left
//! panel sweeps d with m ∈ {1, 2}; right panel sweeps m with d ∈ {1, 2}.

use drill_bench::{banner, base_config, Scale};
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::{Scheme, SweepSpec, TopoSpec};
use drill_stats::{f3, Table};

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 3: synchronization effect (48-engine switches, 80% load)",
        scale,
    );

    let n = scale.dim(4, 8, 48);
    let engines = scale.dim(8, 16, 48);
    let axis: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2, 8],
        Scale::Default => vec![1, 2, 4, 8, 12, 20],
        Scale::Full => vec![1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20],
    };
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: n,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    println!("topology: {n}x{n}x{n}, {engines}-engine switches (paper: 48x48x48, 48 engines)\n");

    let mut base = base_config(
        topo,
        Scheme::Drill {
            d: 1,
            m: 1,
            shim: false,
        },
        0.8,
        scale,
    );
    base.engines = engines;
    base.raw_packet_mode = true;
    base.queue_limit_bytes = 20_000_000;
    base.workload.burst_sigma = 2.0;
    base.sample_queues = true;
    base.drain = drill_sim::Time::from_millis(5);

    // The scheme axis carries the (d, m) pairs: pairs per axis value, so
    // the flat results interleave exactly like the old config list.
    let sweep = |pairs: Vec<Scheme>| {
        SweepSpec::new(base.clone())
            .schemes(pairs)
            .run()
            .into_stats()
    };

    // Left panel: sweep d for m in {1, 2}.
    let res = sweep(
        axis.iter()
            .flat_map(|&d| {
                [
                    Scheme::Drill {
                        d,
                        m: 1,
                        shim: false,
                    },
                    Scheme::Drill {
                        d,
                        m: 2,
                        shim: false,
                    },
                ]
            })
            .collect(),
    );
    let mut t = Table::new(["samples d", "DRILL(d,1)", "DRILL(d,2)"]);
    for (i, &d) in axis.iter().enumerate() {
        t.row([
            d.to_string(),
            f3(res[2 * i].queue_stdv.mean()),
            f3(res[2 * i + 1].queue_stdv.mean()),
        ]);
    }
    println!("(left) mean queue length STDV vs number of samples d");
    println!("{}", t.render());

    // Right panel: sweep m for d in {1, 2}.
    let res = sweep(
        axis.iter()
            .flat_map(|&m| {
                [
                    Scheme::Drill {
                        d: 1,
                        m,
                        shim: false,
                    },
                    Scheme::Drill {
                        d: 2,
                        m,
                        shim: false,
                    },
                ]
            })
            .collect(),
    );
    let mut t = Table::new(["memory m", "DRILL(1,m)", "DRILL(2,m)"]);
    for (i, &m) in axis.iter().enumerate() {
        t.row([
            m.to_string(),
            f3(res[2 * i].queue_stdv.mean()),
            f3(res[2 * i + 1].queue_stdv.mean()),
        ]);
    }
    println!("(right) mean queue length STDV vs units of memory m");
    println!("{}", t.render());

    println!("expected shape (paper): the first extra choice/memory unit helps; large");
    println!("d or m re-inflates the STDV on many-engine switches (engines synchronize");
    println!("onto the same 'shortest' ports).");
}
