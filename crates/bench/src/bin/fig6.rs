//! Figure 6: symmetric Clos — (a) mean FCT vs load, (b) 99.99th-percentile
//! FCT vs load, (c) per-hop mean queueing time at 10/50/80% load.
//!
//! Paper topology: 4 spines x 16 leaves x 20 hosts, 40G core / 10G edge,
//! trace-driven workload. Schemes: ECMP, CONGA, Presto, DRILL w/o shim,
//! DRILL.

use drill_bench::{banner, base_config, cdf_table, fct_schemes, fct_tables, sweep_grid, Scale};
use drill_net::{HopClass, LeafSpineSpec};
use drill_runtime::TopoSpec;
use drill_stats::{f3, Table};

fn main() {
    let scale = Scale::from_env();
    banner("Figure 6: symmetric Clos, trace-driven workload", scale);

    let leaves = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    println!("topology: 4 spines x {leaves} leaves x {hosts} hosts, 40G core / 10G edge");
    println!("(paper: 4 x 16 x 20)\n");

    let schemes = fct_schemes();
    let loads = scale.loads();
    let base = base_config(topo, schemes[0], loads[0], scale);
    let mut grid = sweep_grid(base, &schemes, &loads);

    // (c) uses the 10/50/80% rows of the same grid where available.
    let mut hop_rows: Vec<(f64, Vec<String>)> = Vec::new();
    for (li, &load) in loads.iter().enumerate() {
        if ![0.1, 0.5, 0.8].contains(&load) {
            continue;
        }
        for (si, s) in schemes.iter().enumerate() {
            let st = &grid[li][si];
            hop_rows.push((
                load,
                vec![
                    format!("{:.0}% {}", load * 100.0, s.name()),
                    f3(st.hops.mean_wait_us(HopClass::LeafUp)),
                    f3(st.hops.mean_wait_us(HopClass::SpineDown)),
                    f3(st.hops.mean_wait_us(HopClass::ToHost)),
                ],
            ));
        }
    }

    let (mean, tail) = fct_tables(&loads, &schemes, &mut grid);
    println!("(a) mean FCT [ms] vs offered core load");
    println!("{mean}");
    println!("(b) 99.99th percentile FCT [ms] vs offered core load");
    println!("{tail}");

    let mut t = Table::new([
        "load/scheme",
        "hop1 leaf-up [us]",
        "hop2 spine-down [us]",
        "hop3 to-host [us]",
    ]);
    for (_, row) in hop_rows {
        t.row(row);
    }
    println!("(c) mean queueing time per hop");
    println!("{}", t.render());

    // Bonus: FCT CDF at the highest load, for shape inspection. The grid's
    // last row already ran exactly this configuration (determinism means a
    // re-run would be bit-identical), so reuse it.
    let at_high = grid.last_mut().expect("loads");
    println!(
        "FCT CDF at {:.0}% load [ms]:",
        loads.last().unwrap() * 100.0
    );
    println!("{}", cdf_table(&schemes, at_high, 10));

    println!("expected shape (paper): DRILL < Presto < CONGA < ECMP in mean FCT under");
    println!("load (1.3x/1.4x/1.6x at 80%); the benefit comes from hop-1 (leaf-up)");
    println!("queueing, which DRILL cuts by >2x; DRILL with and without the shim are");
    println!("nearly identical.");
}
