//! Figure 11: (a) packet reordering measured as TCP duplicate ACKs at 80%
//! load; (b, c) mean and 99.99th-percentile FCT vs load with a single
//! leaf-spine link failure.
//!
//! Also reports the §4 GRO-batch claim (DRILL increases receiver GRO
//! batches by <0.5% vs ECMP at 80% load).

use drill_bench::{banner, base_config, fct_schemes, fct_tables, sweep_grid, Scale};
use drill_net::LeafSpineSpec;
use drill_runtime::{random_leaf_spine_failures, Scheme, SweepSpec, TopoSpec};
use drill_stats::Table;

fn main() {
    let scale = Scale::from_env();
    banner(
        "Figure 11: reordering (a) and single link failure (b, c)",
        scale,
    );

    let leaves = scale.dim(4, 8, 16);
    let hosts = scale.dim(8, 16, 20);
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves,
        hosts_per_leaf: hosts,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: drill_net::DEFAULT_PROP,
    });
    println!("topology: 4 spines x {leaves} leaves x {hosts} hosts, 40G/10G (paper: 4x16x20)\n");

    // ---- (a) duplicate-ACK distribution at 80% load -------------------
    let reorder_schemes = vec![
        Scheme::Ecmp,
        Scheme::Random,
        Scheme::RoundRobin,
        Scheme::Presto { shim: false },
        Scheme::drill_no_shim(),
        Scheme::drill_default(),
    ];
    let res = SweepSpec::new(base_config(topo.clone(), reorder_schemes[0], 0.8, scale))
        .schemes(reorder_schemes.clone())
        .run()
        .into_stats();

    let mut t = Table::new([
        "scheme".to_string(),
        "frac >=1 dupACK".into(),
        "frac >=3 dupACK".into(),
        "frac >=1 reorder".into(),
        "GRO batches/pkt".into(),
    ]);
    let ecmp_gro = res[0].gro_batches as f64 / res[0].data_pkts_delivered.max(1) as f64;
    for (s, st) in reorder_schemes.iter().zip(&res) {
        t.row([
            s.name(),
            format!("{:.4}", st.dupacks.frac_at_least(1)),
            format!("{:.4}", st.dupacks.frac_at_least(4)),
            format!("{:.4}", st.reorders.frac_at_least(1)),
            format!(
                "{:.4}",
                st.gro_batches as f64 / st.data_pkts_delivered.max(1) as f64
            ),
        ]);
    }
    println!("(a) reordering at 80% load (per flow)");
    println!("{}", t.render());
    let drill_gro = res[5].gro_batches as f64 / res[5].data_pkts_delivered.max(1) as f64;
    println!(
        "GRO batch increase, DRILL vs ECMP: {:+.2}% (paper: < +0.5%)\n",
        (drill_gro / ecmp_gro - 1.0) * 100.0
    );

    // ---- (b, c) one leaf-spine link failure ---------------------------
    let failure = random_leaf_spine_failures(&topo.build(), 1, drill_bench::seed_from_env());
    println!(
        "failed link: leaf {} <-> spine {}\n",
        failure[0].0, failure[0].1
    );
    let schemes = fct_schemes();
    let loads = scale.loads();
    let mut base = base_config(topo, schemes[0], loads[0], scale);
    base.failed_links = failure;
    let mut grid = sweep_grid(base, &schemes, &loads);
    let (mean, tail) = fct_tables(&loads, &schemes, &mut grid);
    println!("(b) mean FCT [ms] vs load, 1 link failure");
    println!("{mean}");
    println!("(c) 99.99th percentile FCT [ms] vs load, 1 link failure");
    println!("{tail}");
    println!("expected shape (paper): (a) DRILL has dramatically less reordering than");
    println!("Random/RR at identical granularity, and almost never crosses the 3-dupACK");
    println!("retransmit threshold; (b,c) DRILL and Presto handle a single failure best.");
}
