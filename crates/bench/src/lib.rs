//! Shared support for the figure/table harness binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure from the
//! paper's evaluation (§4). Output is plain aligned text: one row per
//! x-axis point, one column per scheme/series, so results can be diffed
//! across runs and compared against the paper's plots.
//!
//! Scale control: the `DRILL_SCALE` environment variable selects
//!
//! * `quick` — smoke-test scale (seconds);
//! * unset / `default` — reduced scale with the paper's topology *shapes*
//!   (minutes);
//! * `full` — the paper's topology sizes and longer runs (hours).
//!
//! `DRILL_SEED` overrides the RNG seed (default 1).

#![warn(missing_docs)]

use drill_runtime::{ExperimentConfig, RunStats, Scheme, SweepSpec, TopoSpec};
use drill_sim::Time;
use drill_stats::{f3, Table};

/// Harness scale selected by `DRILL_SCALE`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Smoke-test scale.
    Quick,
    /// Reduced default scale.
    Default,
    /// Paper scale.
    Full,
}

impl Scale {
    /// Read the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("DRILL_SCALE").unwrap_or_default().as_str() {
            "full" => Scale::Full,
            "quick" => Scale::Quick,
            _ => Scale::Default,
        }
    }

    /// The experiment duration (flow-arrival window) for this scale.
    pub fn duration(self) -> Time {
        match self {
            Scale::Quick => Time::from_millis(4),
            Scale::Default => Time::from_millis(15),
            Scale::Full => Time::from_millis(60),
        }
    }

    /// Scale a topology dimension: full keeps `full`, default uses `def`,
    /// quick uses `quick`.
    pub fn dim(self, quick: usize, def: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Default => def,
            Scale::Full => full,
        }
    }

    /// The offered-load sweep for FCT-vs-load figures.
    pub fn loads(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.3, 0.8],
            Scale::Default => vec![0.1, 0.3, 0.5, 0.7, 0.8],
            Scale::Full => vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9],
        }
    }
}

/// The RNG seed from `DRILL_SEED` (default 1).
pub fn seed_from_env() -> u64 {
    std::env::var("DRILL_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A base experiment config with harness scale and seed applied.
pub fn base_config(topo: TopoSpec, scheme: Scheme, load: f64, scale: Scale) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(topo, scheme, load);
    cfg.seed = seed_from_env();
    cfg.duration = scale.duration();
    cfg
}

/// The five schemes of the FCT figures (6-12, 14).
pub fn fct_schemes() -> Vec<Scheme> {
    vec![
        Scheme::Ecmp,
        Scheme::Conga,
        Scheme::presto(),
        Scheme::drill_no_shim(),
        Scheme::drill_default(),
    ]
}

/// Run a schemes × loads sweep grid from `base` on the `DRILL_THREADS`
/// pool, returning results indexed `[load][scheme]`.
pub fn sweep_grid(base: ExperimentConfig, schemes: &[Scheme], loads: &[f64]) -> Vec<Vec<RunStats>> {
    SweepSpec::new(base)
        .schemes(schemes.to_vec())
        .loads(loads.to_vec())
        .run()
        .by_load_scheme()
}

/// Render a mean-FCT and tail-FCT table for a (scheme x load) result grid
/// (results indexed `[load][scheme]`).
pub fn fct_tables(
    loads: &[f64],
    schemes: &[Scheme],
    grid: &mut [Vec<RunStats>],
) -> (String, String) {
    let mut header = vec!["load %".to_string()];
    header.extend(schemes.iter().map(|s| s.name()));
    let mut mean = Table::new(header.clone());
    let mut tail = Table::new(header);
    for (li, &load) in loads.iter().enumerate() {
        let mut mrow = vec![format!("{:.0}", load * 100.0)];
        let mut trow = vec![format!("{:.0}", load * 100.0)];
        for stats in &mut grid[li] {
            mrow.push(f3(stats.mean_fct_ms()));
            trow.push(f3(stats.fct_percentile_ms(99.99)));
        }
        mean.row(mrow);
        tail.row(trow);
    }
    (mean.render(), tail.render())
}

/// Print a CDF table: one column of FCT values per scheme at the sampled
/// cumulative fractions.
pub fn cdf_table(schemes: &[Scheme], stats: &mut [RunStats], points: usize) -> String {
    let mut header = vec!["CDF".to_string()];
    header.extend(schemes.iter().map(|s| s.name()));
    let mut t = Table::new(header);
    let fracs: Vec<f64> = (1..=points).map(|i| i as f64 / points as f64).collect();
    for q in fracs {
        let mut row = vec![format!("{q:.2}")];
        for s in stats.iter_mut() {
            row.push(f3(s.fct_ms.quantile(q)));
        }
        t.row(row);
    }
    t.render()
}

/// Standard banner for a figure binary.
pub fn banner(what: &str, scale: Scale) {
    println!("== {what} ==");
    println!(
        "scale: {:?} (set DRILL_SCALE=quick|default|full), seed {}",
        scale,
        seed_from_env()
    );
    println!();
}
