//! Cost of DRILL's control plane (§3.4.1): routing, Quiver construction
//! and symmetric decomposition, as a function of fabric size — the paper
//! argues these are polynomial-time and easily parallelizable.
//!
//! The decomposition is benched three ways on a failed (asymmetric)
//! fabric: the legacy eager per-pair enumeration, a cold structural
//! [`SymmetryEngine`] install, and a warm reinstall on a persistent
//! engine (the incremental-reconvergence cost, where the class interners
//! and decomposition templates all hit). The std-only `qbench --control`
//! binary mirrors these cells for offline builds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drill_core::{install_symmetric_groups_eager, Quiver, SymmetryEngine};
use drill_net::{leaf_spine, LeafSpineSpec, RouteTable, SwitchId, DEFAULT_PROP};

fn spec(n: usize) -> LeafSpineSpec {
    LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: 1,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    }
}

fn bench_control_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_plane");
    for &n in &[8usize, 16, 32] {
        let topo = leaf_spine(&spec(n));
        g.bench_with_input(BenchmarkId::new("route_compute", n), &n, |b, _| {
            b.iter(|| RouteTable::compute(&topo))
        });
        let routes = RouteTable::compute(&topo);
        g.bench_with_input(BenchmarkId::new("quiver_build", n), &n, |b, _| {
            b.iter(|| Quiver::build(&topo, &routes))
        });
        // Post-failure full reconvergence (routes + groups), on a fabric
        // with one failed uplink so the decomposition has real work.
        let mut failed = topo.clone();
        failed.fail_switch_link(failed.leaves()[0], SwitchId(n as u32), 0);
        g.bench_with_input(BenchmarkId::new("reconverge_eager", n), &n, |b, _| {
            b.iter(|| {
                let mut r = RouteTable::compute(&failed);
                install_symmetric_groups_eager(&failed, &mut r)
            })
        });
        g.bench_with_input(
            BenchmarkId::new("reconverge_structural_cold", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut r = RouteTable::compute(&failed);
                    SymmetryEngine::new().install(&failed, &mut r)
                })
            },
        );
        // Warm reinstall: the engine persists across iterations, as it
        // does across reconvergences inside a live `World`.
        let mut warm = SymmetryEngine::new();
        {
            let mut r = RouteTable::compute(&failed);
            warm.install(&failed, &mut r);
        }
        g.bench_with_input(
            BenchmarkId::new("reconverge_structural_warm", n),
            &n,
            |b, _| {
                b.iter(|| {
                    let mut r = RouteTable::compute(&failed);
                    warm.install(&failed, &mut r)
                })
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_control_plane
}
criterion_main!(benches);
