//! Cost of DRILL's control plane (§3.4.1): routing, Quiver construction
//! and symmetric decomposition, as a function of fabric size — the paper
//! argues these are polynomial-time and easily parallelizable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drill_core::{install_symmetric_groups, Quiver};
use drill_net::{leaf_spine, LeafSpineSpec, RouteTable, SwitchId, DEFAULT_PROP};

fn spec(n: usize) -> LeafSpineSpec {
    LeafSpineSpec {
        spines: n,
        leaves: n,
        hosts_per_leaf: 1,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    }
}

fn bench_control_plane(c: &mut Criterion) {
    let mut g = c.benchmark_group("control_plane");
    for &n in &[8usize, 16, 32] {
        let topo = leaf_spine(&spec(n));
        g.bench_with_input(BenchmarkId::new("route_compute", n), &n, |b, _| {
            b.iter(|| RouteTable::compute(&topo))
        });
        let routes = RouteTable::compute(&topo);
        g.bench_with_input(BenchmarkId::new("quiver_build", n), &n, |b, _| {
            b.iter(|| Quiver::build(&topo, &routes))
        });
        // Post-failure full reconvergence: routes + groups.
        let mut failed = topo.clone();
        failed.fail_switch_link(failed.leaves()[0], SwitchId(n as u32), 0);
        g.bench_with_input(BenchmarkId::new("reconverge_with_groups", n), &n, |b, _| {
            b.iter(|| {
                let mut r = RouteTable::compute(&failed);
                install_symmetric_groups(&failed, &mut r)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_control_plane
}
criterion_main!(benches);
