//! TCP state-machine throughput: segments processed per second over a
//! perfect pipe (bounds the simulator's per-packet transport cost).

use criterion::{criterion_group, criterion_main, Criterion};
use drill_net::{FlowId, HostId, Packet, PacketArena};
use drill_sim::Time;
use drill_transport::{ShimBuffer, TcpConfig, TcpFlow, SHIM_DEFAULT_TIMEOUT};

fn transfer(bytes: u64) -> TcpFlow {
    let cfg = TcpConfig {
        init_cwnd: 10,
        ..Default::default()
    };
    let mut f = TcpFlow::new(FlowId(0), HostId(0), HostId(1), 1, bytes, Time::ZERO, cfg);
    let mut ids = 0u64;
    let mut in_flight: Vec<Packet> = Vec::new();
    let mut now = Time::ZERO;
    f.start_sending(now, &mut ids, &mut in_flight);
    while !f.is_done() {
        now = now + Time::from_micros(10);
        let data: Vec<Packet> = std::mem::take(&mut in_flight);
        let mut acks = Vec::new();
        for p in &data {
            f.on_data(p, now, &mut ids, &mut acks);
        }
        now = now + Time::from_micros(10);
        for a in &acks {
            f.on_ack(a, now, &mut ids, &mut in_flight);
        }
    }
    f
}

fn bench_tcp(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp");
    g.bench_function("transfer_1MB_perfect_pipe", |b| {
        b.iter(|| transfer(1_000_000))
    });
    g.bench_function("shim_in_order_1k_pkts", |b| {
        b.iter(|| {
            let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
            let mut arena = PacketArena::new();
            let mut deliver = Vec::new();
            let mut delivered = 0usize;
            for i in 0..1000u64 {
                let p = Packet::data(
                    i,
                    FlowId(0),
                    HostId(0),
                    HostId(1),
                    1,
                    i * 1442,
                    1442,
                    Time::ZERO,
                );
                let r = arena.insert(p);
                s.on_packet(&arena, r, Time::from_nanos(i * 1200), &mut deliver);
                delivered += deliver.len();
                for d in deliver.drain(..) {
                    arena.free(d);
                }
            }
            delivered
        })
    });
    g.bench_function("shim_swapped_pairs_1k_pkts", |b| {
        b.iter(|| {
            let mut s = ShimBuffer::new(SHIM_DEFAULT_TIMEOUT);
            let mut arena = PacketArena::new();
            let mut deliver = Vec::new();
            let mut delivered = 0usize;
            for i in 0..500u64 {
                let a = Packet::data(
                    i,
                    FlowId(0),
                    HostId(0),
                    HostId(1),
                    1,
                    (2 * i + 1) * 1442,
                    1442,
                    Time::ZERO,
                );
                let b2 = Packet::data(
                    i,
                    FlowId(0),
                    HostId(0),
                    HostId(1),
                    1,
                    (2 * i) * 1442,
                    1442,
                    Time::ZERO,
                );
                let ra = arena.insert(a);
                s.on_packet(&arena, ra, Time::from_nanos(i * 2400), &mut deliver);
                let rb = arena.insert(b2);
                s.on_packet(&arena, rb, Time::from_nanos(i * 2400 + 1200), &mut deliver);
                delivered += deliver.len();
                for d in deliver.drain(..) {
                    arena.free(d);
                }
            }
            delivered
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tcp
}
criterion_main!(benches);
