//! Per-decision cost of the forwarding policies — the ablation backing
//! §3.2.2's O(d + m) complexity claim and the paper's hardware-feasibility
//! argument: DRILL's decision is a handful of queue reads and compares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drill_core::DrillPolicy;
use drill_lb::{EcmpPolicy, RandomPolicy, RoundRobinPolicy};
use drill_net::{FlowId, QueueView, SelectCtx, SwitchPolicy};
use drill_sim::{SimRng, Time};

struct FakeQueues(Vec<u64>);
impl QueueView for FakeQueues {
    fn visible_bytes(&self, p: u16) -> u64 {
        self.0[p as usize]
    }
    fn visible_pkts(&self, p: u16) -> u32 {
        (self.0[p as usize] / 1500) as u32
    }
    fn num_ports(&self) -> usize {
        self.0.len()
    }
}

fn bench_policies(c: &mut Criterion) {
    let ports: Vec<u16> = (0..48).collect();
    let queues = FakeQueues((0..48).map(|i| (i as u64 * 3711) % 90_000).collect());
    let mut rng = SimRng::seed_from(7);
    let ctx = SelectCtx {
        now: Time::from_micros(5),
        engine: 0,
        flow_hash: 0x1234_5678_9abc_def0,
        flow: FlowId(3),
        dst_leaf: 1,
        candidates: &ports,
    };

    let mut g = c.benchmark_group("select");
    g.bench_function("ecmp", |b| {
        let mut p = EcmpPolicy;
        b.iter(|| p.select(&ctx, &queues, &mut rng))
    });
    g.bench_function("random", |b| {
        let mut p = RandomPolicy;
        b.iter(|| p.select(&ctx, &queues, &mut rng))
    });
    g.bench_function("rr", |b| {
        let mut p = RoundRobinPolicy::new(1);
        b.iter(|| p.select(&ctx, &queues, &mut rng))
    });
    for (d, m) in [(1, 0), (2, 1), (4, 2), (12, 1), (2, 11), (20, 20)] {
        g.bench_with_input(
            BenchmarkId::new("drill", format!("d{d}_m{m}")),
            &(d, m),
            |b, &(d, m)| {
                let mut p = DrillPolicy::new(d, m, 1);
                b.iter(|| p.select(&ctx, &queues, &mut rng))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_policies
}
criterion_main!(benches);
