//! Whole-simulation throughput: events per second for a short end-to-end
//! run, per scheme (the cost of the policies in situ).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drill_net::{LeafSpineSpec, DEFAULT_PROP};
use drill_runtime::{run, ExperimentConfig, Scheme, TopoSpec};
use drill_sim::Time;

fn cfg(scheme: Scheme) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(
        TopoSpec::LeafSpine(LeafSpineSpec {
            spines: 4,
            leaves: 4,
            hosts_per_leaf: 8,
            host_rate: 10_000_000_000,
            core_rate: 40_000_000_000,
            prop: DEFAULT_PROP,
        }),
        scheme,
        0.5,
    );
    cfg.duration = Time::from_millis(2);
    cfg.drain = Time::from_millis(50);
    cfg
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    for scheme in [
        Scheme::Ecmp,
        Scheme::drill_default(),
        Scheme::Conga,
        Scheme::presto(),
    ] {
        g.bench_with_input(
            BenchmarkId::new("run_2ms", scheme.name()),
            &scheme,
            |b, &s| b.iter(|| run(&cfg(s))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
