//! Throughput of the DES kernel's event queue — the simulator's hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drill_sim::{EventQueue, SimRng, Time};

fn bench_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for &backlog in &[64usize, 4096, 65536] {
        g.bench_with_input(BenchmarkId::new("push_pop", backlog), &backlog, |b, &n| {
            let mut rng = SimRng::seed_from(1);
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut t = 0u64;
            for _ in 0..n {
                t += rng.below(1000) as u64;
                q.push(Time::from_nanos(t), t);
            }
            b.iter(|| {
                // Steady state: one pop, one push at a future time.
                let (now, v) = q.pop().expect("backlog maintained");
                q.push(now + Time::from_nanos(500 + (v % 997)), v);
            })
        });
    }
    g.bench_function("cancellable_lifecycle", |b| {
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            let tok = q.push_cancellable(Time::from_nanos(t), 1);
            q.cancel(tok);
            q.push(Time::from_nanos(t + 1), 2);
            q.pop()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_queue
}
criterion_main!(benches);
