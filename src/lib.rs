//! # drill
//!
//! A from-scratch Rust reproduction of **DRILL: Micro Load Balancing for
//! Low-latency Data Center Networks** (SIGCOMM 2017): the paper's
//! per-packet, switch-local load balancing algorithm, the discrete-event
//! datacenter simulator its evaluation runs on, every baseline it is
//! compared against, and the experiment harness regenerating its tables
//! and figures.
//!
//! This crate re-exports the workspace's public API under stable module
//! names:
//!
//! * [`sim`] — deterministic discrete-event kernel (clock, event queue,
//!   splittable RNG).
//! * [`exec`] — fixed-size thread pool + chunked work queue driving
//!   deterministic parallel sweeps (`DRILL_THREADS`).
//! * [`stats`] — moments, percentiles/CDFs, histograms, text tables.
//! * [`net`] — packets, Clos topologies, switches with forwarding engines,
//!   host NICs, routing, the load-balancer plug-in API.
//! * [`core`] — DRILL(d, m), the Quiver, symmetric path decomposition,
//!   the §3.2.4 stability model.
//! * [`lb`] — ECMP, per-packet Random/RR, WCMP, Presto, CONGA.
//! * [`transport`] — TCP Reno/NewReno, GRO accounting, reordering shim.
//! * [`workload`] — flow-size distributions, arrival processes, traffic
//!   patterns, incast.
//! * [`faults`] — the chaos engine: deterministic fault-injection
//!   schedules (link flaps, switch outages, degradation, lossy links).
//! * [`runtime`] — experiment configuration and execution.
//! * [`hw`] — the hardware area model.
//! * [`telemetry`] — zero-overhead probes, the flight recorder, queue
//!   time series, and the `DRILLTRC` trace format (`tracedump` reads it).
//! * [`audit`] — runtime invariant watchdogs, typed anomaly reports, and
//!   the in-memory `DRILLSNAP` ring behind rewind-replay diagnostics.
//! * [`snapshot`] — the `DRILLSNAP` checkpoint container (tagged
//!   sections, FNV-1a trailer checksum).
//!
//! # Example
//!
//! ```
//! use drill::net::{LeafSpineSpec, DEFAULT_PROP};
//! use drill::runtime::{run, ExperimentConfig, Scheme, TopoSpec};
//! use drill::sim::Time;
//!
//! let topo = TopoSpec::LeafSpine(LeafSpineSpec {
//!     spines: 2, leaves: 2, hosts_per_leaf: 2,
//!     host_rate: 10_000_000_000, core_rate: 40_000_000_000,
//!     prop: DEFAULT_PROP,
//! });
//! let mut cfg = ExperimentConfig::new(topo, Scheme::drill_default(), 0.3);
//! cfg.duration = Time::from_millis(1);
//! cfg.drain = Time::from_millis(50);
//! let stats = run(&cfg);
//! assert!(stats.completion_rate() > 0.9);
//! ```

pub use drill_audit as audit;
pub use drill_core as core;
pub use drill_exec as exec;
pub use drill_faults as faults;
pub use drill_hw as hw;
pub use drill_lb as lb;
pub use drill_net as net;
pub use drill_runtime as runtime;
pub use drill_sim as sim;
pub use drill_snapshot as snapshot;
pub use drill_stats as stats;
pub use drill_telemetry as telemetry;
pub use drill_transport as transport;
pub use drill_workload as workload;
