//! Asymmetry handling (§3.4): what DRILL's control plane computes when a
//! link fails, and why it matters.
//!
//! Reproduces the paper's Figure 4 scenario — the L0-S0 link fails, making
//! the L3→L1 paths asymmetric — then shows the Quiver decomposition and
//! compares DRILL with and without its symmetric-component handling.
//!
//! ```sh
//! cargo run --release --example failure_asymmetry
//! ```

use drill::core::{decompose_groups, enumerate_shortest_paths, Quiver};
use drill::net::{leaf_spine, LeafSpineSpec, RouteTable, SwitchId, DEFAULT_PROP};
use drill::runtime::{run_many, ExperimentConfig, Scheme, TopoSpec};
use drill::sim::Time;

fn main() {
    // Figure 4: 4 leaves, 3 spines, all fabric links 40G.
    let spec = LeafSpineSpec {
        spines: 3,
        leaves: 4,
        hosts_per_leaf: 8,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    };
    let mut topo = leaf_spine(&spec);
    let l0 = topo.leaves()[0];
    let s0 = SwitchId(4); // leaves get ids 0..4, spines 4..7
    assert!(topo.fail_switch_link(l0, s0, 0));
    println!("Figure 4 scenario: L0-S0 failed.\n");

    // Control plane: Quiver + decomposition at L3 toward L1.
    let routes = RouteTable::compute(&topo);
    let quiver = Quiver::build(&topo, &routes);
    let l3 = topo.leaves()[3];
    println!("L3 -> L1 shortest paths and scores:");
    for links in enumerate_shortest_paths(&topo, &routes, l3, 1, 64) {
        let info = quiver.path_info(&topo, links.clone());
        let spine = topo.link(links[0]).dst;
        println!(
            "  via {:?}: port {} score {:x?} cap {} Gbps",
            spine,
            info.first_port,
            info.score.iter().map(|s| s >> 48).collect::<Vec<_>>(),
            info.cap_bps / 1_000_000_000
        );
    }
    let groups = decompose_groups(&topo, &routes, &quiver, l3, 1);
    println!("\nsymmetric components at L3 toward L1 (ports : weight):");
    for g in &groups {
        println!("  {:?} : {}", g.ports, g.weight);
    }
    println!("(paper: {{P0}} and {{P1, P2}} with weights 1 : 2)\n");

    // Data plane: the paper's exact Figure 4 traffic — hosts under L0 and
    // L3 blast hosts under L1 with persistent flows. The fabric (not the
    // host NICs) must be the bottleneck to expose the effect, so this part
    // uses 20G core links against 10G hosts: into-L1 capacity is 60G
    // (3 spines x 20G), of which the S0 path is reachable only from L3.
    let spec2 = LeafSpineSpec {
        core_rate: 20_000_000_000,
        ..spec
    };
    let topo_spec = TopoSpec::LeafSpine(spec2);
    // Hosts are numbered leaf-major: leaf0 = 0..8, leaf1 = 8..16, leaf3 = 24..32.
    let mut static_flows = Vec::new();
    for i in 0..8u32 {
        static_flows.push((i, 8 + i, u64::MAX)); // L0 -> L1
        static_flows.push((24 + i, 8 + ((i + 1) % 8), u64::MAX)); // L3 -> L1
    }
    let mk = |handling: bool| {
        let mut cfg = ExperimentConfig::new(topo_spec.clone(), Scheme::drill_default(), 0.0);
        cfg.duration = Time::from_millis(50);
        cfg.drain = Time::from_millis(10);
        cfg.failed_links = vec![(l0.0, s0.0)];
        cfg.asymmetry_handling = handling;
        cfg.static_flows = static_flows.clone();
        cfg
    };
    let res = run_many(&[mk(true), mk(false)]);
    println!("persistent L0->L1 and L3->L1 flows (the paper's Figure 4 traffic):");
    for (label, stats) in ["with §3.4 handling", "without (naive ESF)"]
        .into_iter()
        .zip(res)
    {
        println!(
            "  {label:<22} aggregate goodput into L1: {:>6.2} Gbps (per flow mean {:>5.2})",
            stats.elephant_gbps.mean() * 16.0,
            stats.elephant_gbps.mean(),
        );
    }
    println!("\nWithout the decomposition, DRILL equalizes queues across asymmetric");
    println!("paths, capping flows at the most congested path's rate (the paper's");
    println!("P0 half-idle example); with it, DRILL hashes flows across components");
    println!("and micro load balances only inside each symmetric group.");
}
