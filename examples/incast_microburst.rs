//! Incast microbursts: the scenario the paper's introduction motivates.
//!
//! Every 2 ms, 10% of hosts simultaneously fetch 10 KB responses from 10%
//! of the other hosts, on top of 20% background load. Micro load balancing
//! reacts within packets; edge/flowlet schemes react only after their
//! control loop catches up.
//!
//! ```sh
//! cargo run --release --example incast_microburst
//! ```

use drill::net::{HopClass, LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{run_many, ExperimentConfig, Scheme, TopoSpec};
use drill::sim::Time;
use drill::workload::IncastSpec;

fn main() {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 16,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });
    let schemes = [
        Scheme::Ecmp,
        Scheme::Conga,
        Scheme::presto(),
        Scheme::drill_default(),
    ];

    let cfgs: Vec<ExperimentConfig> = schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = ExperimentConfig::new(topo.clone(), scheme, 0.2);
            cfg.duration = Time::from_millis(20);
            cfg.workload.incast = Some(IncastSpec {
                epoch_gap: Time::from_millis(2),
                ..Default::default()
            });
            cfg
        })
        .collect();

    println!("incast on a 4x4x16 fabric: 10% of hosts fetch 10KB from 10% of hosts");
    println!("every 2ms, 20% background load\n");
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "scheme", "incasts", "median", "p99", "p99.99", "hop1 loss %", "hop1 q [us]"
    );
    for mut stats in run_many(&cfgs) {
        println!(
            "{:<10} {:>8} {:>10.3}ms {:>10.3}ms {:>10.3}ms {:>14.3} {:>12.3}",
            stats.scheme,
            stats.fct_incast_ms.count(),
            stats.fct_incast_ms.percentile(50.0),
            stats.fct_incast_ms.percentile(99.0),
            stats.fct_incast_ms.percentile(99.99),
            stats.hops.loss_rate(HopClass::LeafUp) * 100.0,
            stats.hops.mean_wait_us(HopClass::LeafUp),
        );
    }
    println!("\nThe paper's Figure 14: DRILL cuts the 99.99th-percentile incast FCT by");
    println!("2.1x vs CONGA and 2.6x vs Presto at 20% load, by diverting the burst");
    println!("packet-by-packet before upstream queues overflow.");
}
