//! Quickstart: build a leaf-spine fabric, offer a trace-driven workload,
//! and compare ECMP against DRILL(2, 1).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use drill::net::{HopClass, LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{run, ExperimentConfig, Scheme, TopoSpec};
use drill::sim::Time;

fn main() {
    // A small two-stage Clos: 4 spines, 4 leaves, 8 hosts per leaf,
    // 40 Gbps core over 10 Gbps edges.
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 4,
        leaves: 4,
        hosts_per_leaf: 8,
        host_rate: 10_000_000_000,
        core_rate: 40_000_000_000,
        prop: DEFAULT_PROP,
    });

    println!("DRILL quickstart: 4x4x8 leaf-spine, trace-driven workload, 60% load\n");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "scheme", "flows", "mean FCT", "p99 FCT", "hop1 q [us]", "dupACK flows"
    );
    for scheme in [Scheme::Ecmp, Scheme::Random, Scheme::drill_default()] {
        let mut cfg = ExperimentConfig::new(topo.clone(), scheme, 0.6);
        cfg.duration = Time::from_millis(10);
        let mut stats = run(&cfg);
        let p99 = stats.fct_percentile_ms(99.0);
        println!(
            "{:<22} {:>10} {:>9.3}ms {:>9.2}ms {:>12.3} {:>13.2}%",
            stats.scheme,
            stats.flows_started,
            stats.mean_fct_ms(),
            p99,
            stats.hops.mean_wait_us(HopClass::LeafUp),
            stats.dupacks.frac_at_least(1) * 100.0,
        );
    }
    println!("\nDRILL keeps the upstream (leaf-to-spine) queues near zero by making a");
    println!("load-aware choice for every packet; the optional shim hides the little");
    println!("reordering that remains. See crates/bench/src/bin/ for the full paper");
    println!("reproduction harness (fig2..fig14, table1, hw_area).");
}
