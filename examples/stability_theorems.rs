//! The §3.2.4 stability theorems, observed.
//!
//! Theorem 1: DRILL(d, 0) — random sampling without memory — is unstable
//! for some admissible arrivals whenever d < N.
//! Theorem 2: DRILL(d, m≥1) is stable with 100% throughput.
//!
//! ```sh
//! cargo run --release --example stability_theorems
//! ```

use drill::core::stability::{simulate, StabilityConfig};

fn show(label: &str, cfg: &StabilityConfig) {
    let out = simulate(cfg);
    println!("{label}");
    println!(
        "  admissible: {}   slots: {}   arrivals: {}   served: {}",
        cfg.is_admissible(),
        cfg.slots,
        out.arrivals,
        out.served
    );
    println!(
        "  final queues: {:?}   max backlog: {}   throughput: {:.3}",
        out.final_queues,
        out.max_total,
        out.throughput()
    );
    let traj: Vec<u64> = out.trajectory.iter().step_by(8).copied().collect();
    println!("  backlog trajectory (every slots/8): {traj:?}\n");
}

fn main() {
    println!("M x N switch model: 1 engine at lambda = 0.85, two queues with");
    println!("service rates (0.92, 0.08) — admissible, but the slow queue can");
    println!("only survive if the scheduler learns to avoid it.\n");

    let unstable = StabilityConfig {
        arrival_prob: vec![0.85],
        service_prob: vec![0.92, 0.08],
        d: 1,
        m: 0,
        slots: 200_000,
        seed: 42,
    };
    show(
        "DRILL(1, 0) — Theorem 1: memoryless sampling diverges",
        &unstable,
    );

    let stable = StabilityConfig {
        m: 1,
        ..unstable.clone()
    };
    show(
        "DRILL(1, 1) — Theorem 2: one memory unit restores stability",
        &stable,
    );

    let multi = StabilityConfig {
        arrival_prob: vec![0.2; 4],
        service_prob: vec![0.6, 0.3, 0.05],
        d: 2,
        m: 1,
        slots: 200_000,
        seed: 7,
    };
    show(
        "DRILL(2, 1), 4 engines, heterogeneous service — still stable",
        &multi,
    );

    println!("The theorem's intuition: without memory, a queue receives d/N of the");
    println!("load whenever it is sampled and short, regardless of its service rate;");
    println!("memory lets engines keep routing to the fast queue they have seen.");
}
