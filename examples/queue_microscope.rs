//! Queue microscope: the §3.2.3 experiment in miniature — how evenly does
//! each policy keep a leaf's uplink queues, sampled every 10 µs?
//!
//! ```sh
//! cargo run --release --example queue_microscope
//! ```

use drill::net::{LeafSpineSpec, DEFAULT_PROP};
use drill::runtime::{run_many, ExperimentConfig, Scheme, TopoSpec};
use drill::sim::Time;

fn main() {
    let topo = TopoSpec::LeafSpine(LeafSpineSpec {
        spines: 8,
        leaves: 8,
        hosts_per_leaf: 8,
        host_rate: 10_000_000_000,
        core_rate: 10_000_000_000,
        prop: DEFAULT_PROP,
    });
    let schemes = [
        Scheme::Ecmp,
        Scheme::Random,
        Scheme::RoundRobin,
        Scheme::PerFlowDrill,
        Scheme::Drill {
            d: 1,
            m: 0,
            shim: false,
        },
        Scheme::Drill {
            d: 2,
            m: 0,
            shim: false,
        },
        Scheme::Drill {
            d: 2,
            m: 1,
            shim: false,
        },
        Scheme::Drill {
            d: 3,
            m: 2,
            shim: false,
        },
    ];
    println!("8x8x8 fabric, open-loop bursty traffic at 80% load; queue-length STDV");
    println!("across each leaf's uplinks and each leaf's spine downlinks, sampled");
    println!("every 10us (the paper's Figure 2 metric; lower = better balance)\n");

    let cfgs: Vec<ExperimentConfig> = schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = ExperimentConfig::new(topo.clone(), scheme, 0.8);
            cfg.duration = Time::from_millis(10);
            cfg.drain = Time::from_millis(10);
            cfg.raw_packet_mode = true;
            cfg.sample_queues = true;
            cfg.queue_limit_bytes = 20_000_000;
            cfg.workload.burst_sigma = 2.0;
            cfg
        })
        .collect();
    println!("{:<24} {:>14} {:>10}", "scheme", "mean STDV", "max STDV");
    for stats in run_many(&cfgs) {
        println!(
            "{:<24} {:>14.3} {:>10.1}",
            stats.scheme,
            stats.queue_stdv.mean(),
            stats.queue_stdv.max()
        );
    }
    println!("\nReading the ladder: per-flow hashing (ECMP) is orders of magnitude worse");
    println!("than any per-packet scheme; adding one random choice (d=2) and one unit");
    println!("of memory (m=1) tightens per-packet Random substantially — the paper's");
    println!("'small amounts of choice and memory dramatically improve performance'.");
}
